package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gorace/internal/monorepo"
	"gorace/internal/stream"
)

// TestConcurrentSoak is the acceptance load test: 64+ simultaneous
// clients mixing corpus reads, job submits, and replays while a
// writer appends a nightly mid-soak — all under `go test -race`. A
// race-detection service must itself be provably race-free under
// load; any aliasing between snapshot readers, the cache, the job
// pool, and the single writer shows up here as a -race report.
func TestConcurrentSoak(t *testing.T) {
	store, traced := seedStore(t)
	svc, ts := newTestServer(t, Config{
		Store:          store,
		Repo:           monorepo.Generate(2, 2, 0.8, 42),
		JobWorkers:     2,
		JobParallelism: 2,
		QueueDepth:     8,
	})

	const clients = 64
	const requestsPerClient = 12
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		submits  atomic.Int64
		rejected atomic.Int64
	)
	client := &http.Client{Timeout: 30 * time.Second}

	paths := []string{
		"/healthz",
		"/v1/stats",
		"/v1/races?limit=0",
		"/v1/races?sort=count&limit=3",
		"/v1/races/" + traced,
		"/v1/diff?a=run-001&b=run-002",
		"/v1/replay/" + traced,
		"/v1/jobs",
	}
	jobSpec := `{"patterns":["capture-loop-index"],"strategies":["random"],"seeds":2}`

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requestsPerClient; i++ {
				if (c+i)%8 == 7 {
					// Every eighth request is a job submit: accepted or
					// pushed back, never an error.
					resp, err := client.Post(ts.URL+"/v1/jobs", "application/json",
						bytes.NewReader([]byte(jobSpec)))
					if err != nil {
						t.Errorf("client %d: submit: %v", c, err)
						failures.Add(1)
						continue
					}
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						submits.Add(1)
					case http.StatusTooManyRequests:
						if resp.Header.Get("Retry-After") == "" {
							t.Errorf("client %d: 429 without Retry-After", c)
						}
						rejected.Add(1)
					default:
						t.Errorf("client %d: submit status %d", c, resp.StatusCode)
						failures.Add(1)
					}
					continue
				}
				path := paths[(c*7+i)%len(paths)]
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					t.Errorf("client %d: GET %s: %v", c, path, err)
					failures.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: GET %s = %d", c, path, resp.StatusCode)
					failures.Add(1)
				}
			}
		}(c)
	}

	// The single writer: a nightly append racing the read storm. The
	// snapshot flip must be invisible to in-flight readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // land mid-soak
		if _, err := svc.PublishNightly("run-003", 7); err != nil {
			t.Errorf("nightly during soak: %v", err)
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d request failures under soak", failures.Load())
	}
	if submits.Load() == 0 {
		t.Fatal("soak never managed to submit a job")
	}
	if !svc.View().HasRun("run-003") {
		t.Fatal("nightly append did not land")
	}
	t.Logf("soak: %d clients, %d jobs accepted, %d pushed back (429)",
		clients, submits.Load(), rejected.Load())

	// Drain cleanly with everything that got queued.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
}

// TestIngestSoak extends the load test to the streaming write path:
// 16 concurrent /v1/ingest streams race the corpus read storm and a
// nightly append, all under `go test -race`. Ingests beyond the
// configured stream bound must bounce with 429, never block or error;
// everything that lands must be serveable immediately.
func TestIngestSoak(t *testing.T) {
	store, traced := seedStore(t)
	svc, ts := newTestServer(t, Config{
		Store:         store,
		Repo:          monorepo.Generate(2, 2, 0.8, 42),
		IngestStreams: 6,
	})
	data := synthStream(t, stream.SynthSpec{Events: 20000, Planted: 3, Seed: 21})

	const ingesters = 16
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		landed   atomic.Int64
		bounced  atomic.Int64
	)
	client := &http.Client{Timeout: 30 * time.Second}

	for c := 0; c < ingesters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			run := fmt.Sprintf("soak-ingest-%03d", c)
			for attempt := 0; attempt < 50; attempt++ {
				resp, err := client.Post(
					ts.URL+"/v1/ingest?run="+run+"&unit=soak/stream",
					"application/octet-stream", bytes.NewReader(data))
				if err != nil {
					t.Errorf("ingester %d: %v", c, err)
					failures.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					landed.Add(1)
					return
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("ingester %d: 429 without Retry-After", c)
					}
					bounced.Add(1)
					time.Sleep(2 * time.Millisecond)
				default:
					t.Errorf("ingester %d: status %d", c, resp.StatusCode)
					failures.Add(1)
					return
				}
			}
			t.Errorf("ingester %d: never admitted", c)
			failures.Add(1)
		}(c)
	}

	// Read storm racing the ingest writers.
	paths := []string{
		"/v1/stats",
		"/v1/races?limit=0",
		"/v1/races/" + traced,
		"/v1/replay/" + traced,
	}
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				path := paths[(c*5+i)%len(paths)]
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					t.Errorf("reader %d: GET %s: %v", c, path, err)
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: GET %s = %d", c, path, resp.StatusCode)
					failures.Add(1)
				}
			}
		}(c)
	}

	// The nightly writer contends for the same store mutex the ingest
	// publishes serialize on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		if _, err := svc.PublishNightly("run-003", 7); err != nil {
			t.Errorf("nightly during ingest soak: %v", err)
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failures under ingest soak", failures.Load())
	}
	if landed.Load() != ingesters {
		t.Fatalf("%d of %d ingests landed", landed.Load(), ingesters)
	}
	for c := 0; c < ingesters; c++ {
		run := fmt.Sprintf("soak-ingest-%03d", c)
		if !svc.View().HasRun(run) {
			t.Fatalf("ingested run %s not in corpus", run)
		}
	}
	if !svc.View().HasRun("run-003") {
		t.Fatal("nightly append did not land")
	}
	t.Logf("ingest soak: %d landed, %d pushed back (429)", landed.Load(), bounced.Load())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain after ingest soak: %v", err)
	}
}

// TestDrainCancelsInFlightIngest pins the drain deadline contract: an
// ingest stalled mid-stream survives until Drain's context expires,
// is then cancelled (503, nothing published), and Drain returns with
// the deadline error instead of hanging on the stuck stream.
func TestDrainCancelsInFlightIngest(t *testing.T) {
	store, _ := seedStore(t)
	svc, ts := newTestServer(t, Config{Store: store})

	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest?run=stalled-001", pr)
		if err != nil {
			done <- result{0, err}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()

	// Commit the handler to the stream — header plus a few events —
	// then stall the body forever.
	data := synthStream(t, stream.SynthSpec{Events: 3000, Planted: 1, Seed: 8})
	if _, err := pw.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := svc.Drain(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("drain with a stalled ingest returned %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("drain blocked %v on a stalled stream", waited)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("stalled ingest request: %v", res.err)
	}
	if res.status != http.StatusServiceUnavailable {
		t.Fatalf("cancelled ingest = %d, want 503", res.status)
	}
	if svc.View().HasRun("stalled-001") {
		t.Fatal("cancelled ingest published its partial fold")
	}
	pw.Close()
}

// TestFixedGenerationResponsesAreByteIdentical pins the acceptance
// determinism property: with the snapshot generation fixed, every
// endpoint answers byte-identically no matter how many clients hammer
// it in parallel — cache hit or miss, first request or thousandth.
func TestFixedGenerationResponsesAreByteIdentical(t *testing.T) {
	store, traced := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store})

	paths := []string{
		"/v1/stats",
		"/v1/races?limit=0",
		"/v1/races?sort=count&limit=0",
		"/v1/races?unit=svc-a/TestLoop&limit=0",
		"/v1/races/" + traced,
		"/v1/diff?a=run-001&b=run-002",
		"/v1/replay/" + traced,
	}
	baseline := make(map[string][]byte, len(paths))
	var gen string
	for _, p := range paths {
		status, body, h := get(t, ts.URL+p)
		if status != http.StatusOK {
			t.Fatalf("baseline GET %s = %d %s", p, status, body)
		}
		baseline[p] = body
		if gen == "" {
			gen = h.Get("X-Corpus-Generation")
		} else if got := h.Get("X-Corpus-Generation"); got != gen {
			t.Fatalf("generation drifted across baseline reads: %s then %s", gen, got)
		}
	}

	const parallelism = 32
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < 3; i++ {
				for _, p := range paths {
					resp, err := client.Get(ts.URL + p)
					if err != nil {
						t.Errorf("worker %d: GET %s: %v", w, p, err)
						return
					}
					var buf bytes.Buffer
					buf.ReadFrom(resp.Body)
					resp.Body.Close()
					if g := resp.Header.Get("X-Corpus-Generation"); g != gen {
						t.Errorf("worker %d: GET %s at generation %s, want %s", w, p, g, gen)
						return
					}
					if !bytes.Equal(buf.Bytes(), baseline[p]) {
						t.Errorf("worker %d: GET %s bytes differ from baseline", w, p)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSnapshotFlipConsistency: a reader that captured a generation
// header can rely on the paired body forever — after a nightly flips
// the snapshot, the *new* generation serves new bytes, but re-reads
// never blend the two.
func TestSnapshotFlipConsistency(t *testing.T) {
	store, _ := seedStore(t)
	svc, ts := newTestServer(t, Config{
		Store: store,
		Repo:  monorepo.Generate(2, 2, 0.8, 42),
	})

	_, before, h1 := get(t, ts.URL+"/v1/stats")
	genBefore := h1.Get("X-Corpus-Generation")

	if _, err := svc.PublishNightly("run-003", 7); err != nil {
		t.Fatal(err)
	}

	status, after, h2 := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats after flip = %d", status)
	}
	genAfter := h2.Get("X-Corpus-Generation")
	if genAfter == genBefore {
		t.Fatalf("generation did not advance past %s", genBefore)
	}
	if bytes.Equal(before, after) {
		t.Fatal("snapshot flip produced identical stats bodies (nightly appended nothing?)")
	}
	var stats struct {
		RunHistory []struct{ ID string }
	}
	if err := json.Unmarshal(after, &stats); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, run := range stats.RunHistory {
		if run.ID == "run-003" {
			found = true
		}
	}
	if !found {
		t.Fatalf("new snapshot missing run-003: %s", after)
	}

	// And the new generation is itself stable.
	_, again, _ := get(t, ts.URL+"/v1/stats")
	if !bytes.Equal(after, again) {
		t.Fatal("post-flip responses not stable")
	}
}
