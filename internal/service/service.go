// Package service is the always-on face of the detection pipeline:
// an HTTP/JSON server (cmd/raced) that serves race-corpus queries to
// heavy concurrent read traffic and executes detection campaigns as
// asynchronous jobs — the paper's "deployed at scale" shape (§3),
// where race detection is infrastructure a whole engineering org
// queries, not a CLI one engineer runs.
//
// The concurrency design has one writer and arbitrarily many readers,
// mediated by immutable snapshots:
//
//   - All reads (stats, race listings, diffs, replays) are served off
//     a corpus.View — an immutable copy-on-write snapshot of the
//     store — published in an atomic pointer. Readers never take a
//     lock and never observe a concurrent append.
//   - All store mutations (the nightly publish) serialize on one
//     mutex and end by publishing a fresh snapshot. Earlier snapshots
//     keep serving in-flight requests untouched.
//   - Responses for snapshot-derived endpoints are cached keyed by
//     (generation, path, query). Equal generations imply identical
//     folded state, so a hit is byte-identical to a recompute, and
//     publishing a new snapshot implicitly invalidates by changing
//     the key.
//
// Detection work arrives as campaign specs (POST /v1/jobs) and runs
// on a bounded pool of job workers over the internal/sweep engine,
// which recycles core.Runner workers across seeds. The job queue is
// bounded: when it is full the service answers 429 with Retry-After
// instead of accumulating unbounded work — backpressure, not
// collapse. Drain stops intake and finishes (or cancels) what is in
// flight, so a deploy never tears down a half-written job.
//
// Fittingly for a race-detection service, the whole package is
// load-tested clean under `go test -race` (see soak_test.go), and a
// fixed snapshot generation answers every read byte-identically at
// any client parallelism.
package service

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"gorace/internal/corpus"
	"gorace/internal/monorepo"
)

// Config configures a Server. The zero value of every optional field
// selects a sensible default; Store is required except in worker mode.
type Config struct {
	// Store is the open corpus store the service serves and appends
	// to. The server becomes the store's single writer; the caller
	// must not mutate it while the server is running (closing it
	// after Drain is the caller's job). Required unless Worker is set:
	// worker nodes are store-less and serve reads from replicated
	// snapshots.
	Store *corpus.Store
	// Cluster, when set, runs this server as a distributed
	// coordinator: campaigns dispatch to joined workers instead of the
	// local sweep engine, and /v1/cluster* + /v1/replica are served.
	// Mutually exclusive with Worker.
	Cluster *ClusterConfig
	// Worker, when set, runs this server as a store-less worker node:
	// it executes POST /v1/shards dispatches and serves the read API
	// from snapshots replicated off Worker.Coordinator. Excludes
	// Store, Repo, and Cluster; the jobs API answers 503.
	Worker *WorkerConfig
	// Repo, when set, enables POST /v1/nightly: a monorepo nightly
	// run appended into the live store.
	Repo *monorepo.Repo
	// JobWorkers is the number of concurrent campaign executors
	// (default 2). Each executes one job at a time.
	JobWorkers int
	// QueueDepth bounds the pending-job queue (default 16). A full
	// queue answers 429 + Retry-After.
	QueueDepth int
	// JobParallelism is the sweep-engine worker count each campaign
	// runs with (default GOMAXPROCS).
	JobParallelism int
	// MaxSeeds caps the per-job seed range (default 512), bounding
	// the compute one request can demand.
	MaxSeeds int
	// JobsRetained bounds how many finished jobs (with their full
	// results) stay queryable before oldest-first eviction (default
	// 64). Evicted job ids answer 404.
	JobsRetained int
	// CacheEntries bounds the response cache (default 512 entries).
	CacheEntries int
	// IngestStreams bounds concurrent POST /v1/ingest streams
	// (default 4). Excess requests answer 429 + Retry-After.
	IngestStreams int
	// IngestWindow is the per-goroutine recent-event retention for
	// ingested streams (default stream.DefaultWindow; negative
	// disables trace retention).
	IngestWindow int
	// IngestCeilingMiB bounds each ingest's detector shadow memory in
	// MiB (default 0 = unbounded). Under a ceiling the default
	// detector is the paged, evictable fasttrack-paged; see
	// docs/STREAMING.md for the soundness tradeoff.
	IngestCeilingMiB int
	// Logger receives request and job logs (default: discard).
	Logger *log.Logger
}

// Server is the raced service: handlers over snapshots plus the job
// manager. Create with New, mount Handler on an http.Server, and call
// Drain before process exit.
type Server struct {
	cfg      Config
	log      *log.Logger
	mu       sync.Mutex // serializes store mutations (nightly + campaign publishes)
	draining atomic.Bool
	snap     atomic.Pointer[corpus.View]
	cache    *cache
	jobs     *jobManager // nil on worker nodes
	cluster  *cluster    // coordinator mode only
	worker   *workerRuntime
	handler  http.Handler

	// Ingest lifecycle: a semaphore bounds concurrent streams, the
	// WaitGroup lets Drain wait them out, and cancelling ingestCtx is
	// Drain's deadline kill switch for whatever is still running.
	ingestSem    chan struct{}
	ingestMu     sync.Mutex // orders handler Add against Drain's Wait
	ingestWG     sync.WaitGroup
	ingestCtx    context.Context
	ingestCancel context.CancelFunc
}

// New builds a Server and publishes the initial snapshot — the store's
// in standalone and coordinator mode, an empty replica view in worker
// mode (StartWorker pulls the real one from the coordinator).
func New(cfg Config) (*Server, error) {
	if cfg.Worker != nil {
		if cfg.Store != nil || cfg.Repo != nil || cfg.Cluster != nil {
			return nil, fmt.Errorf("service: worker mode excludes Store, Repo, and Cluster")
		}
		if cfg.Worker.Coordinator == "" {
			return nil, fmt.Errorf("service: Config.Worker.Coordinator is required")
		}
	} else if cfg.Store == nil {
		return nil, fmt.Errorf("service: Config.Store is required")
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSeeds <= 0 {
		cfg.MaxSeeds = 512
	}
	if cfg.JobsRetained <= 0 {
		cfg.JobsRetained = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 512
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.IngestStreams <= 0 {
		cfg.IngestStreams = 4
	}
	s := &Server{
		cfg:       cfg,
		log:       cfg.Logger,
		cache:     newCache(cfg.CacheEntries),
		ingestSem: make(chan struct{}, cfg.IngestStreams),
	}
	s.ingestCtx, s.ingestCancel = context.WithCancel(context.Background())
	if cfg.Worker != nil {
		// Store-less worker: start from an empty generation-0 view;
		// the replica loop replaces it with the coordinator's.
		s.snap.Store(corpus.ViewFromExport(0, "", corpus.Export{}))
		s.worker = newWorkerRuntime(cfg.Worker.withDefaults())
		s.handler = withRecovery(s.log, withLogging(s.log, s.routes()))
		return s, nil
	}
	s.snap.Store(cfg.Store.Snapshot())
	s.jobs = newJobManager(cfg.JobWorkers, cfg.QueueDepth, cfg.JobParallelism, cfg.MaxSeeds, cfg.JobsRetained, cfg.Logger)
	s.jobs.publish = s.publishCollector
	s.jobs.hasRun = func(id string) bool { return s.View().HasRun(id) }
	if cfg.Cluster != nil {
		s.cluster = newCluster(cfg.Cluster.withDefaults(), s.log)
		s.jobs.remote = s.cluster.runJob
		s.jobs.liveWorkers = s.cluster.reg.liveCount
	}
	s.handler = withRecovery(s.log, withLogging(s.log, s.routes()))
	return s, nil
}

// role names what kind of node this server is, for /healthz and logs.
func (s *Server) role() string {
	switch {
	case s.worker != nil:
		return "worker"
	case s.cluster != nil:
		return "coordinator"
	default:
		return "standalone"
	}
}

// Handler returns the service's HTTP handler (all /v1 endpoints plus
// /healthz), already wrapped in logging and panic recovery.
func (s *Server) Handler() http.Handler { return s.handler }

// View returns the currently published snapshot. Every read endpoint
// derives its entire response from one View, which is what makes
// responses for a fixed generation byte-identical under any load.
func (s *Server) View() *corpus.View { return s.snap.Load() }

// PublishNightly runs one monorepo nightly campaign, appends it to
// the live store under runID, and publishes the resulting snapshot.
// It is the single-writer path: concurrent calls serialize, and
// readers keep serving the previous snapshot until the new one is
// published. Returns an error if no Repo is configured or the run id
// was already recorded.
func (s *Server) PublishNightly(runID string, seed int64) (*monorepo.Nightly, error) {
	if s.cfg.Repo == nil {
		return nil, fmt.Errorf("service: no monorepo configured for nightly runs")
	}
	if runID == "" {
		return nil, fmt.Errorf("service: nightly run id must not be empty")
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		// Re-check under the mutex: Drain may have begun while this
		// call waited for an earlier publish. After Drain's quiesce,
		// no new append may touch the store.
		return nil, ErrDraining
	}
	if s.View().HasRun(runID) {
		return nil, fmt.Errorf("service: run id %q already recorded", runID)
	}
	n, err := s.cfg.Repo.RunNightly(s.cfg.Store, runID, seed)
	if err != nil {
		return nil, err
	}
	snap := s.cfg.Store.Snapshot()
	s.snap.Store(snap)
	s.cache.prune(snap.Generation())
	s.log.Printf("nightly %s published: generation %d, %d defects on record",
		runID, snap.Generation(), snap.Len())
	return n, nil
}

// publishCollector appends a finished campaign's defect corpus to the
// live store under the collector's run id and publishes the resulting
// snapshot — the JobSpec.RunID path, sharing the nightly publish's
// single-writer discipline. It carries no draining check on purpose:
// jobs drain to completion before Drain syncs the store, and a
// gracefully drained job should still land its publish.
func (s *Server) publishCollector(coll *corpus.Collector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.View().HasRun(coll.RunID()) {
		// Submit checks too, but two jobs may race to the same id.
		return fmt.Errorf("service: run id %q already recorded", coll.RunID())
	}
	if err := coll.AppendTo(s.cfg.Store); err != nil {
		return err
	}
	snap := s.cfg.Store.Snapshot()
	s.snap.Store(snap)
	s.cache.prune(snap.Generation())
	s.log.Printf("campaign %s published: generation %d, %d defects on record",
		coll.RunID(), snap.Generation(), snap.Len())
	return nil
}

// Drain gracefully shuts the write paths down: job intake and nightly
// publishes stop (both answer 503), queued and running jobs finish —
// if ctx expires first the remaining campaigns are cancelled and
// marked failed — and an in-flight nightly is waited out before the
// store is synced. After Drain returns, nothing inside the server
// touches the store again, so the caller may safely Close it. Call
// after http.Server.Shutdown has stopped new requests (a Shutdown
// that timed out may leave a nightly handler running; Drain's
// quiesce covers exactly that case).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.jobs != nil {
		err = s.jobs.drain(ctx)
	}
	// In-flight ingest streams may finish until the drain deadline;
	// past it they are cancelled and waited out, so no ingest touches
	// the store after Drain returns. New ingests were already turned
	// away by the draining flag; the mutex handshake waits out any
	// handler that read the flag before it flipped, so no Add races
	// the Wait below.
	s.ingestMu.Lock()
	s.ingestMu.Unlock() //nolint:staticcheck // empty critical section is the point
	ingested := make(chan struct{})
	go func() {
		s.ingestWG.Wait()
		close(ingested)
	}()
	select {
	case <-ingested:
	case <-ctx.Done():
		s.ingestCancel()
		<-ingested
		if err == nil {
			err = ctx.Err()
		}
	}
	s.ingestCancel()
	// Quiesce the writer: taking the mutex waits for an in-flight
	// PublishNightly to finish its append; the draining flag keeps
	// any later call from starting a new one. Worker nodes have no
	// store to sync.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Store != nil {
		if syncErr := s.cfg.Store.Sync(); syncErr != nil && err == nil {
			err = syncErr
		}
	}
	return err
}
