// Package service is the always-on face of the detection pipeline:
// an HTTP/JSON server (cmd/raced) that serves race-corpus queries to
// heavy concurrent read traffic and executes detection campaigns as
// asynchronous jobs — the paper's "deployed at scale" shape (§3),
// where race detection is infrastructure a whole engineering org
// queries, not a CLI one engineer runs.
//
// The concurrency design has one writer and arbitrarily many readers,
// mediated by immutable snapshots:
//
//   - All reads (stats, race listings, diffs, replays) are served off
//     a corpus.View — an immutable copy-on-write snapshot of the
//     store — published in an atomic pointer. Readers never take a
//     lock and never observe a concurrent append.
//   - All store mutations (the nightly publish) serialize on one
//     mutex and end by publishing a fresh snapshot. Earlier snapshots
//     keep serving in-flight requests untouched.
//   - Responses for snapshot-derived endpoints are cached keyed by
//     (generation, path, query). Equal generations imply identical
//     folded state, so a hit is byte-identical to a recompute, and
//     publishing a new snapshot implicitly invalidates by changing
//     the key.
//
// Detection work arrives as campaign specs (POST /v1/jobs) and runs
// on a bounded pool of job workers over the internal/sweep engine,
// which recycles core.Runner workers across seeds. The job queue is
// bounded: when it is full the service answers 429 with Retry-After
// instead of accumulating unbounded work — backpressure, not
// collapse. Drain stops intake and finishes (or cancels) what is in
// flight, so a deploy never tears down a half-written job.
//
// Fittingly for a race-detection service, the whole package is
// load-tested clean under `go test -race` (see soak_test.go), and a
// fixed snapshot generation answers every read byte-identically at
// any client parallelism.
package service

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"gorace/internal/corpus"
	"gorace/internal/monorepo"
)

// Config configures a Server. The zero value of every optional field
// selects a sensible default; Store is required.
type Config struct {
	// Store is the open corpus store the service serves and appends
	// to. The server becomes the store's single writer; the caller
	// must not mutate it while the server is running (closing it
	// after Drain is the caller's job).
	Store *corpus.Store
	// Repo, when set, enables POST /v1/nightly: a monorepo nightly
	// run appended into the live store.
	Repo *monorepo.Repo
	// JobWorkers is the number of concurrent campaign executors
	// (default 2). Each executes one job at a time.
	JobWorkers int
	// QueueDepth bounds the pending-job queue (default 16). A full
	// queue answers 429 + Retry-After.
	QueueDepth int
	// JobParallelism is the sweep-engine worker count each campaign
	// runs with (default GOMAXPROCS).
	JobParallelism int
	// MaxSeeds caps the per-job seed range (default 512), bounding
	// the compute one request can demand.
	MaxSeeds int
	// JobsRetained bounds how many finished jobs (with their full
	// results) stay queryable before oldest-first eviction (default
	// 64). Evicted job ids answer 404.
	JobsRetained int
	// CacheEntries bounds the response cache (default 512 entries).
	CacheEntries int
	// Logger receives request and job logs (default: discard).
	Logger *log.Logger
}

// Server is the raced service: handlers over snapshots plus the job
// manager. Create with New, mount Handler on an http.Server, and call
// Drain before process exit.
type Server struct {
	cfg      Config
	log      *log.Logger
	mu       sync.Mutex // serializes store mutations (nightly appends)
	draining atomic.Bool
	snap     atomic.Pointer[corpus.View]
	cache    *cache
	jobs     *jobManager
	handler  http.Handler
}

// New builds a Server over an open store and publishes the initial
// snapshot.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("service: Config.Store is required")
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSeeds <= 0 {
		cfg.MaxSeeds = 512
	}
	if cfg.JobsRetained <= 0 {
		cfg.JobsRetained = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 512
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		cfg:   cfg,
		log:   cfg.Logger,
		cache: newCache(cfg.CacheEntries),
	}
	s.snap.Store(cfg.Store.Snapshot())
	s.jobs = newJobManager(cfg.JobWorkers, cfg.QueueDepth, cfg.JobParallelism, cfg.MaxSeeds, cfg.JobsRetained, cfg.Logger)
	s.handler = withRecovery(s.log, withLogging(s.log, s.routes()))
	return s, nil
}

// Handler returns the service's HTTP handler (all /v1 endpoints plus
// /healthz), already wrapped in logging and panic recovery.
func (s *Server) Handler() http.Handler { return s.handler }

// View returns the currently published snapshot. Every read endpoint
// derives its entire response from one View, which is what makes
// responses for a fixed generation byte-identical under any load.
func (s *Server) View() *corpus.View { return s.snap.Load() }

// PublishNightly runs one monorepo nightly campaign, appends it to
// the live store under runID, and publishes the resulting snapshot.
// It is the single-writer path: concurrent calls serialize, and
// readers keep serving the previous snapshot until the new one is
// published. Returns an error if no Repo is configured or the run id
// was already recorded.
func (s *Server) PublishNightly(runID string, seed int64) (*monorepo.Nightly, error) {
	if s.cfg.Repo == nil {
		return nil, fmt.Errorf("service: no monorepo configured for nightly runs")
	}
	if runID == "" {
		return nil, fmt.Errorf("service: nightly run id must not be empty")
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		// Re-check under the mutex: Drain may have begun while this
		// call waited for an earlier publish. After Drain's quiesce,
		// no new append may touch the store.
		return nil, ErrDraining
	}
	if s.View().HasRun(runID) {
		return nil, fmt.Errorf("service: run id %q already recorded", runID)
	}
	n, err := s.cfg.Repo.RunNightly(s.cfg.Store, runID, seed)
	if err != nil {
		return nil, err
	}
	snap := s.cfg.Store.Snapshot()
	s.snap.Store(snap)
	s.cache.prune(snap.Generation())
	s.log.Printf("nightly %s published: generation %d, %d defects on record",
		runID, snap.Generation(), snap.Len())
	return n, nil
}

// Drain gracefully shuts the write paths down: job intake and nightly
// publishes stop (both answer 503), queued and running jobs finish —
// if ctx expires first the remaining campaigns are cancelled and
// marked failed — and an in-flight nightly is waited out before the
// store is synced. After Drain returns, nothing inside the server
// touches the store again, so the caller may safely Close it. Call
// after http.Server.Shutdown has stopped new requests (a Shutdown
// that timed out may leave a nightly handler running; Drain's
// quiesce covers exactly that case).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	err := s.jobs.drain(ctx)
	// Quiesce the writer: taking the mutex waits for an in-flight
	// PublishNightly to finish its append; the draining flag keeps
	// any later call from starting a new one.
	s.mu.Lock()
	defer s.mu.Unlock()
	if syncErr := s.cfg.Store.Sync(); syncErr != nil && err == nil {
		err = syncErr
	}
	return err
}
