package service

// Worker mode: a store-less raced node. Workers execute POST /v1/shards
// dispatches with the same sweep.RunShard + aggregator machinery the
// local engine uses, and serve the read API (/v1/stats, /v1/races*,
// /v1/diff) from generation-stamped snapshots replicated off the
// coordinator — so a read answered by any replica at generation G is
// byte-identical to the coordinator's answer at G, and the standard
// (generation, path, query) response cache works unchanged.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"gorace/internal/corpus"
	"gorace/internal/sweep"
)

// WorkerConfig configures worker mode (Config.Worker). Coordinator is
// required; the zero value of every other field selects a default.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:8077").
	Coordinator string
	// Advertise is this worker's externally reachable base URL, sent
	// on join so the coordinator can dial back shard dispatches.
	// Required by StartWorker; tests that drive joins themselves may
	// leave it empty.
	Advertise string
	// ShardParallelism bounds concurrent shard executions (default
	// GOMAXPROCS).
	ShardParallelism int
	// PullEvery is the replica pull period (default 2s).
	PullEvery time.Duration
	// HeartbeatEvery is the liveness beat period (default 2s).
	HeartbeatEvery time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ShardParallelism < 1 {
		c.ShardParallelism = runtime.GOMAXPROCS(0)
	}
	if c.PullEvery <= 0 {
		c.PullEvery = 2 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	return c
}

// workerRuntime is a worker node's runtime state: the pooled client
// it talks to the coordinator with, the shard-execution semaphore, and
// the cross-request core.Worker cache (detector shadow state is
// allocated once per configuration, not once per shard request).
type workerRuntime struct {
	cfg    WorkerConfig
	client *http.Client
	sem    chan struct{}
	cache  *sweep.WorkerCache
	pullMu sync.Mutex // serializes replica pulls (loop vs. manual calls)
}

func newWorkerRuntime(cfg WorkerConfig) *workerRuntime {
	return &workerRuntime{
		cfg: cfg,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		}},
		sem:   make(chan struct{}, cfg.ShardParallelism),
		cache: sweep.NewWorkerCache(),
	}
}

// handleShards executes one dispatched shard synchronously and answers
// with its transportable aggregates. The request is self-contained
// (spec + shard coordinates), revalidated at the door, and executed
// with the same factories the local engine would use — which is why a
// worker's answer folds into the coordinator's roots identically to a
// locally executed shard.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req shardRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard request: %v", err)
		return
	}
	if req.RunID == "" {
		writeError(w, http.StatusBadRequest, "shard request needs a runId")
		return
	}
	if err := validateSpec(&req.Spec, s.cfg.MaxSeeds); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard spec: %v", err)
		return
	}
	units := campaignUnits(req.Spec)
	sh := sweep.Shard{UnitIdx: req.Shard.UnitIdx, Lo: req.Shard.Lo, N: req.Shard.N}
	if sh.UnitIdx < 0 || sh.UnitIdx >= len(units) ||
		sh.Lo < 0 || sh.N < 1 || sh.Lo+sh.N > units[sh.UnitIdx].Runs {
		writeError(w, http.StatusBadRequest,
			"shard unit %d seeds [%d,%d) is out of range for the campaign spec",
			sh.UnitIdx, sh.Lo, sh.Lo+sh.N)
		return
	}
	wr := s.worker
	select {
	case wr.sem <- struct{}{}:
	case <-r.Context().Done():
		return
	}
	defer func() { <-wr.sem }()
	aggs, stats, err := sweep.RunShard(r.Context(), units, sh, wr.cache,
		func() sweep.Aggregator { return sweep.NewProb() },
		func() sweep.Aggregator { return corpus.NewCollector(req.RunID) },
	)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "shard execution: %v", err)
		return
	}
	coll := aggs[1].(*corpus.Collector)
	var buf bytes.Buffer
	if err := corpus.WriteDelta(&buf, corpus.Export{Records: coll.Records()}); err != nil {
		writeError(w, http.StatusInternalServerError, "encode shard corpus: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, shardResponse{
		ShardIdx:   req.ShardIdx,
		Runs:       stats.Runs,
		Racy:       stats.Racy,
		Stats:      aggs[0].(*sweep.Prob).IndexedStats(),
		Executions: coll.Executions(),
		Reports:    coll.Reports(),
		Corpus:     buf.Bytes(),
	})
}

// JoinCoordinator registers this worker with its coordinator under the
// configured advertise URL. StartWorker calls it with retries; it is
// exported for callers that manage the worker lifecycle themselves.
func (s *Server) JoinCoordinator() error {
	wr := s.worker
	if wr == nil {
		return fmt.Errorf("service: not a worker node")
	}
	if wr.cfg.Advertise == "" {
		return fmt.Errorf("service: worker has no advertise URL to join with")
	}
	body, err := json.Marshal(joinRequest{URL: wr.cfg.Advertise})
	if err != nil {
		return err
	}
	resp, err := wr.client.Post(wr.cfg.Coordinator+"/v1/cluster/join", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("service: join %s: %w", wr.cfg.Coordinator, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service: join %s: status %d", wr.cfg.Coordinator, resp.StatusCode)
	}
	return nil
}

// heartbeat sends one liveness beat; an unknown-worker answer (the
// coordinator restarted and lost its registry) triggers a rejoin.
func (s *Server) heartbeat() error {
	wr := s.worker
	body, err := json.Marshal(joinRequest{URL: wr.cfg.Advertise})
	if err != nil {
		return err
	}
	resp, err := wr.client.Post(wr.cfg.Coordinator+"/v1/cluster/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusNotFound:
		return s.JoinCoordinator()
	default:
		return fmt.Errorf("service: heartbeat %s: status %d", wr.cfg.Coordinator, resp.StatusCode)
	}
}

// PullReplica fetches the coordinator's snapshot if it has moved past
// this replica's generation and publishes it as the local read view,
// stamped with the origin's generation and path. Reports whether a new
// generation was published. The steady-state call (generations equal)
// is a single 304 exchange.
func (s *Server) PullReplica() (bool, error) {
	wr := s.worker
	if wr == nil {
		return false, fmt.Errorf("service: not a worker node")
	}
	wr.pullMu.Lock()
	defer wr.pullMu.Unlock()
	cur := s.View().Generation()
	resp, err := wr.client.Get(fmt.Sprintf("%s/v1/replica?since=%d", wr.cfg.Coordinator, cur))
	if err != nil {
		return false, fmt.Errorf("service: replica pull: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		io.Copy(io.Discard, resp.Body)
		return false, nil
	case http.StatusOK:
	default:
		io.Copy(io.Discard, resp.Body)
		return false, fmt.Errorf("service: replica pull: status %d", resp.StatusCode)
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Corpus-Generation"), 10, 64)
	if err != nil {
		return false, fmt.Errorf("service: replica pull: bad X-Corpus-Generation: %v", err)
	}
	x, err := corpus.ReadDelta(resp.Body)
	if err != nil {
		return false, fmt.Errorf("service: replica pull: %w", err)
	}
	v := corpus.ViewFromExport(gen, resp.Header.Get("X-Corpus-Path"), x)
	s.snap.Store(v)
	s.cache.prune(gen)
	s.log.Printf("replica: generation %d pulled from %s (%d defects, %d runs)",
		gen, wr.cfg.Coordinator, v.Len(), len(v.Runs()))
	return true, nil
}

// StartWorker joins the coordinator — retrying until ctx expires, so a
// worker may boot before its coordinator — pulls the initial replica,
// and starts the heartbeat and replica-pull loops, which run until ctx
// is cancelled. cmd/raced calls it once after the listener is up.
func (s *Server) StartWorker(ctx context.Context) error {
	wr := s.worker
	if wr == nil {
		return fmt.Errorf("service: not a worker node")
	}
	for {
		err := s.JoinCoordinator()
		if err == nil {
			break
		}
		s.log.Printf("worker: %v (retrying)", err)
		select {
		case <-ctx.Done():
			return fmt.Errorf("service: never joined %s: %w", wr.cfg.Coordinator, ctx.Err())
		case <-time.After(wr.cfg.HeartbeatEvery):
		}
	}
	if _, err := s.PullReplica(); err != nil {
		s.log.Printf("worker: initial replica pull: %v", err)
	}
	go s.workerLoop(ctx)
	return nil
}

// workerLoop drives heartbeats and replica pulls until ctx ends.
func (s *Server) workerLoop(ctx context.Context) {
	wr := s.worker
	beat := time.NewTicker(wr.cfg.HeartbeatEvery)
	defer beat.Stop()
	pull := time.NewTicker(wr.cfg.PullEvery)
	defer pull.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-beat.C:
			if err := s.heartbeat(); err != nil {
				s.log.Printf("worker: heartbeat: %v", err)
			}
		case <-pull.C:
			if _, err := s.PullReplica(); err != nil {
				s.log.Printf("worker: replica pull: %v", err)
			}
		}
	}
}
