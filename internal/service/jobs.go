package service

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"gorace/internal/corpus"
	"gorace/internal/detector"
	"gorace/internal/instrument"
	"gorace/internal/patterns"
	_ "gorace/internal/progs" // registers instrumented programs
	"gorace/internal/racegen"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/sweep"
)

// JobSpec is the campaign description a client POSTs to /v1/jobs:
// which corpus patterns to sweep, under which detector and
// strategies, over how many seeds. Empty fields select defaults, so
// `{}` is a valid whole-corpus campaign.
type JobSpec struct {
	// Mode selects the job kind: "" or "campaign" sweeps the corpus;
	// "racegen" runs the coverage-guided generation loop (see
	// docs/GENERATION.md). racegen jobs execute on the local engine
	// only — a coordinator rejects them at submit.
	Mode string `json:"mode,omitempty"`
	// Rounds and Budget bound a racegen job's generation loop
	// (defaults 3 and 8; ignored for campaign jobs).
	Rounds int `json:"rounds,omitempty"`
	Budget int `json:"budget,omitempty"`
	// Patterns lists corpus pattern ids (default: the whole corpus).
	// Instrumented programs join the sweep as "prog:<name>" entries
	// (see `racedetect -list-programs`).
	Patterns []string `json:"patterns,omitempty"`
	// Variant selects "racy" (default) or "fixed" pattern bodies.
	Variant string `json:"variant,omitempty"`
	// Detector is a registry name (default detector.DefaultName).
	Detector string `json:"detector,omitempty"`
	// Strategies lists scheduling strategies to sweep (default: all
	// registered).
	Strategies []string `json:"strategies,omitempty"`
	// Seeds is the per-unit seed count (default 20, capped by the
	// server's MaxSeeds).
	Seeds int `json:"seeds,omitempty"`
	// BaseSeed offsets the seed range (default 0).
	BaseSeed int64 `json:"baseSeed,omitempty"`
	// Sample checks 1 in N accesses via the deterministic sampling
	// gate (0 or 1 = every access; docs/DETECTORS.md has the
	// tradeoff). Results stay reproducible at any parallelism.
	Sample int `json:"sample,omitempty"`
	// RunID, when set, publishes the finished campaign's defect corpus
	// into the live store under that run id (and a fresh snapshot).
	// Submission fails if the id is already on record. Empty means the
	// job's results stay job-scoped, as before.
	RunID string `json:"runId,omitempty"`
}

// Job states, reported in JobStatus.State.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobProgress is a job's campaign progress, updated live from the
// sweep engine's shard-ordered progress callbacks.
type JobProgress struct {
	// DoneShards and TotalShards count campaign shards folded so far.
	DoneShards  int `json:"doneShards"`
	TotalShards int `json:"totalShards"`
	// Runs counts program executions folded so far; Racy counts the
	// ones that detected at least one race.
	Runs int `json:"runs"`
	Racy int `json:"racy"`
}

// JobUnitResult is one campaign unit's detection-probability estimate
// in a finished job.
type JobUnitResult struct {
	// Unit is "<pattern>/<strategy>".
	Unit string `json:"unit"`
	// Detector and Strategy are the resolved registry names.
	Detector string `json:"detector"`
	Strategy string `json:"strategy"`
	// Runs, Detected, and Races count the unit's executions, racy
	// executions, and raw race reports.
	Runs     int `json:"runs"`
	Detected int `json:"detected"`
	Races    int `json:"races"`
	// Probability is Detected/Runs, the §3.2 manifestation estimate.
	Probability float64 `json:"probability"`
}

// JobDefect is one deduplicated defect a finished job found.
type JobDefect struct {
	// Key is the unit-scoped §3.3.1 dedup key, "<unit>/<hash>".
	Key string `json:"key"`
	// Unit is the campaign unit that manifested it.
	Unit string `json:"unit"`
	// Count totals raw reports attributed to the defect in this job.
	Count uint64 `json:"count"`
	// Category is the primary root-cause label; Labels is the full
	// ordered list. Both come from classifying the defect's first
	// manifestation with its trace hints — the same labels a corpus
	// append would persist.
	Category string   `json:"category,omitempty"`
	Labels   []string `json:"labels,omitempty"`
	// Race is the defining report.
	Race report.Race `json:"race"`
}

// JobResult is a finished job's payload, streamed by
// GET /v1/jobs/{id}/results.
type JobResult struct {
	// Units, Shards, Runs, and Racy summarize the executed campaign.
	Units  int `json:"units"`
	Shards int `json:"shards"`
	Runs   int `json:"runs"`
	Racy   int `json:"racy"`
	// UnitResults holds per-unit probabilities in unit order.
	UnitResults []JobUnitResult `json:"unitResults"`
	// Defects holds the deduplicated race corpus in canonical order.
	Defects []JobDefect `json:"defects"`
	// Categories tallies primary root-cause labels over units' first
	// manifesting races.
	Categories map[string]int `json:"categories"`
}

// Job is one submitted campaign. All mutable fields are guarded by
// mu; Status returns a consistent copy.
type Job struct {
	// ID is the server-assigned job id ("job-000001").
	ID string
	// Spec is the validated spec the job was submitted with.
	Spec JobSpec

	mu        sync.Mutex
	state     string
	err       string
	progress  JobProgress
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// JobStatus is the wire form of a job's state, served by
// GET /v1/jobs/{id}.
type JobStatus struct {
	// ID and Spec echo the submission.
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
	// State is one of queued, running, done, failed.
	State string `json:"state"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Progress is live campaign progress (meaningful once running).
	Progress JobProgress `json:"progress"`
	// Racy mirrors Progress.Racy for finished jobs; Defects counts
	// the deduplicated corpus (set when done).
	Defects int `json:"defects,omitempty"`
}

// Status returns a consistent snapshot of the job's state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, Spec: j.Spec, State: j.state, Error: j.err, Progress: j.progress}
	if j.result != nil {
		st.Defects = len(j.result.Defects)
	}
	return st
}

// Result returns the finished job's result, or (nil, false) while the
// job is still queued, running, or failed.
func (j *Job) Result() (*JobResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.result == nil {
		return nil, false
	}
	return j.result, true
}

// Errors the submit path distinguishes so handlers can map them to
// the right status codes.
var (
	// ErrQueueFull signals backpressure: the bounded job queue has no
	// room; retry later (handlers answer 429 + Retry-After).
	ErrQueueFull = fmt.Errorf("service: job queue full")
	// ErrDraining signals shutdown: the server no longer accepts jobs
	// (handlers answer 503).
	ErrDraining = fmt.Errorf("service: server is draining")
)

// remoteRunner executes a campaign on a worker fleet instead of the
// local sweep engine, returning the same root aggregators and stats
// the engine would. The coordinator's cluster.runJob is the one
// implementation (see dispatch.go).
type remoteRunner func(ctx context.Context, runID string, spec JobSpec, units []sweep.Unit, onProgress func(sweep.Progress)) ([]sweep.Aggregator, sweep.Stats, error)

// jobManager owns the bounded queue and the worker pool that executes
// campaigns over the sweep engine. Finished jobs are retained up to a
// bound and then evicted oldest-first, so a long-running daemon's job
// table — results included — stays bounded like everything else.
type jobManager struct {
	queue       chan *Job
	parallelism int
	maxSeeds    int
	retain      int // finished jobs kept before oldest-first eviction
	log         *log.Logger

	// remote, when set, replaces the local engine: campaigns dispatch
	// to the cluster's workers. liveWorkers backs the submit-time
	// fail-fast (coordinator mode only).
	remote      remoteRunner
	liveWorkers func() int
	// publish appends a finished campaign's collector to the live
	// store; hasRun answers run-id dup checks at submit. Both are set
	// by New whenever a store is present.
	publish func(*corpus.Collector) error
	hasRun  func(string) bool

	ctx    context.Context // cancelled to abort campaigns on forced drain
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, live jobs only
	finished []string // completion order, for retention eviction
	nextID   int
	draining bool
}

func newJobManager(workers, depth, parallelism, maxSeeds, retain int, logger *log.Logger) *jobManager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &jobManager{
		queue:       make(chan *Job, depth),
		parallelism: parallelism,
		maxSeeds:    maxSeeds,
		retain:      retain,
		log:         logger,
		ctx:         ctx,
		cancel:      cancel,
		jobs:        make(map[string]*Job),
	}
	m.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go m.worker()
	}
	return m
}

// validateSpec normalizes and checks a spec against the registries, so
// a bad submission fails with 400 at the door instead of failing a
// worker later. Worker nodes run the same validation on dispatched
// shards (handleShards): a shard request is self-contained, so it is
// revalidated where it executes.
func validateSpec(spec *JobSpec, maxSeeds int) error {
	switch spec.Mode {
	case "", "campaign":
		spec.Mode = "campaign"
	case "racegen":
		if spec.Rounds < 0 || spec.Budget < 0 {
			return fmt.Errorf("racegen rounds/budget must be non-negative")
		}
		if spec.Seeds <= 0 {
			spec.Seeds = 4 // racegen's per-unit schedule panel default
		}
		if spec.Seeds > maxSeeds {
			return fmt.Errorf("seeds %d exceeds the server cap of %d", spec.Seeds, maxSeeds)
		}
		if len(spec.Patterns) > 0 {
			return fmt.Errorf("racegen jobs generate their own programs; patterns must be empty")
		}
		return nil
	default:
		return fmt.Errorf("mode %q (want campaign or racegen)", spec.Mode)
	}
	switch spec.Variant {
	case "":
		spec.Variant = "racy"
	case "racy", "fixed":
	default:
		return fmt.Errorf("variant %q (want racy or fixed)", spec.Variant)
	}
	if spec.Detector == "" {
		spec.Detector = detector.DefaultName
	}
	if _, err := detector.New(spec.Detector); err != nil {
		return err
	}
	if len(spec.Strategies) == 0 {
		spec.Strategies = sched.StrategyNames()
	}
	for _, name := range spec.Strategies {
		if _, err := sched.NewStrategy(name); err != nil {
			return err
		}
	}
	if len(spec.Patterns) == 0 {
		spec.Patterns = patterns.IDs()
	}
	for _, id := range spec.Patterns {
		if _, ok := patterns.ByID(id); ok {
			continue
		}
		if name, isProg := strings.CutPrefix(id, "prog:"); isProg {
			p, ok := instrument.ProgramByName(name)
			if !ok {
				return fmt.Errorf("unknown program %q", name)
			}
			if spec.Variant == "fixed" && p.Fixed == nil {
				return fmt.Errorf("program %q has no fixed variant", name)
			}
			continue
		}
		return fmt.Errorf("unknown pattern %q", id)
	}
	if spec.Seeds <= 0 {
		spec.Seeds = 20
	}
	if spec.Seeds > maxSeeds {
		return fmt.Errorf("seeds %d exceeds the server cap of %d", spec.Seeds, maxSeeds)
	}
	if spec.Sample < 0 {
		return fmt.Errorf("sample %d is negative (want ≥ 1, 1 = no sampling)", spec.Sample)
	}
	return nil
}

// Submit validates the spec and enqueues a job. It returns
// ErrQueueFull when the bounded queue is out of room, ErrDraining once
// drain has begun, and ErrNoWorkers on a coordinator with an empty
// live-worker set; all leave no trace in the job table.
func (m *jobManager) Submit(spec JobSpec) (*Job, error) {
	if err := validateSpec(&spec, m.maxSeeds); err != nil {
		return nil, err
	}
	if spec.RunID != "" {
		if m.publish == nil {
			return nil, fmt.Errorf("runId %q: this node has no store to publish into", spec.RunID)
		}
		if m.hasRun(spec.RunID) {
			return nil, fmt.Errorf("runId %q already recorded", spec.RunID)
		}
	}
	if spec.Mode == "racegen" && m.remote != nil {
		return nil, fmt.Errorf("racegen jobs run on the local engine; this coordinator only dispatches campaigns")
	}
	if m.remote != nil && m.liveWorkers() == 0 {
		return nil, ErrNoWorkers
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	m.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", m.nextID),
		Spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
	}
	select {
	case m.queue <- job:
	default:
		m.nextID-- // the id was never exposed; reuse it
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	return job, nil
}

// Get returns a job by id.
func (m *jobManager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns job statuses in submission order.
func (m *jobManager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Counts returns how many jobs are queued and running, the load
// signal /healthz exposes.
func (m *jobManager) Counts() (queued, running int) {
	for _, st := range m.List() {
		switch st.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.run(job)
	}
}

// run executes one job's campaign on the calling worker goroutine —
// on the local sweep engine, or on the worker fleet when the manager
// has a remote runner. Either way the roots, the fold order, and the
// rendered result are identical (the distributed-determinism
// contract, pinned by TestDistributedMatchesSingleNode).
func (m *jobManager) run(job *Job) {
	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()

	// The collector's run id doubles as the corpus run id when the
	// spec asks for a publish; otherwise it is just provenance.
	runID := job.Spec.RunID
	if runID == "" {
		runID = job.ID
	}

	if job.Spec.Mode == "racegen" {
		m.runRacegenJob(job, runID)
		return
	}

	units := campaignUnits(job.Spec)
	onProgress := func(p sweep.Progress) {
		job.mu.Lock()
		job.progress = JobProgress(p)
		job.mu.Unlock()
	}

	var (
		aggs  []sweep.Aggregator
		stats sweep.Stats
		err   error
	)
	if m.remote != nil {
		aggs, stats, err = m.remote(m.ctx, runID, job.Spec, units, onProgress)
	} else {
		engine := sweep.New(sweep.WithParallelism(m.parallelism))
		aggs, stats, err = engine.RunContext(m.ctx, units, onProgress,
			func() sweep.Aggregator { return sweep.NewProb() },
			// The Collector classifies each defect's first manifestation
			// while its trace is still on the worker — the same labels a
			// corpus append would persist, so job results and nightly
			// records never disagree about the same race.
			func() sweep.Aggregator { return corpus.NewCollector(runID) },
		)
	}
	if err == nil && job.Spec.RunID != "" {
		err = m.publish(aggs[1].(*corpus.Collector))
	}

	job.mu.Lock()
	job.finished = time.Now()
	if err != nil {
		job.state = StateFailed
		job.err = err.Error()
		m.log.Printf("job %s failed after %s: %v", job.ID, job.finished.Sub(job.started), err)
	} else {
		job.state = StateDone
		job.progress = JobProgress{
			DoneShards: stats.Shards, TotalShards: stats.Shards,
			Runs: stats.Runs, Racy: stats.Racy,
		}
		job.result = buildResult(stats, aggs)
		m.log.Printf("job %s done in %s: %d runs, %d defects",
			job.ID, job.finished.Sub(job.started), stats.Runs, len(job.result.Defects))
	}
	job.mu.Unlock()
	m.retire(job.ID)
}

// runRacegenJob executes a racegen-mode job on the local engine: the
// generation loop proposes, scores, and minimizes discriminating
// programs, then folds the keepers' races into a collector published
// under the spec's run id (when set). The loop is seeded and
// sweep-deterministic, so a resubmitted spec reproduces its result.
// Unlike campaigns, a racegen job runs to completion even under a
// forced drain — its budget bounds the work.
func (m *jobManager) runRacegenJob(job *Job, runID string) {
	cfg := racegen.Config{
		Rounds:      job.Spec.Rounds,
		Budget:      job.Spec.Budget,
		Seeds:       job.Spec.Seeds,
		BaseSeed:    job.Spec.BaseSeed,
		Parallelism: m.parallelism,
		RunID:       runID,
		Log: func(format string, args ...any) {
			m.log.Printf("job %s racegen: "+format, append([]any{job.ID}, args...)...)
		},
	}
	res, err := racegen.Run(cfg)
	if err == nil && job.Spec.RunID != "" {
		err = m.publish(res.Collector)
	}

	job.mu.Lock()
	job.finished = time.Now()
	if err != nil {
		job.state = StateFailed
		job.err = err.Error()
		m.log.Printf("job %s failed after %s: %v", job.ID, job.finished.Sub(job.started), err)
	} else {
		job.state = StateDone
		job.result = buildRacegenResult(res)
		job.progress = JobProgress{
			DoneShards: len(res.Rounds), TotalShards: len(res.Rounds),
			Runs: res.Collector.Executions(), Racy: len(res.Keepers),
		}
		m.log.Printf("job %s done in %s: %d keepers, %d categories filled",
			job.ID, job.finished.Sub(job.started), len(res.Keepers), len(res.Fill))
	}
	job.mu.Unlock()
	m.retire(job.ID)
}

// buildRacegenResult renders a racegen campaign into the wire result:
// one unit row per round (candidates → Runs, disagreeing → Detected,
// kept → Races), the keepers' corpus fold as Defects, and the
// category fill as Categories.
func buildRacegenResult(res *racegen.Result) *JobResult {
	jr := &JobResult{
		Units:      len(res.Keepers),
		Shards:     len(res.Rounds),
		Runs:       res.Collector.Executions(),
		Racy:       len(res.Keepers),
		Categories: make(map[string]int),
	}
	for _, r := range res.Rounds {
		jr.UnitResults = append(jr.UnitResults, JobUnitResult{
			Unit:     fmt.Sprintf("racegen/round-%d", r.Round),
			Detector: strings.Join(racegen.Detectors, "+"),
			Strategy: strings.Join(racegen.Strategies, "+"),
			Runs:     r.Candidates, Detected: r.Disagreeing, Races: r.Kept,
			Probability: func() float64 {
				if r.Candidates == 0 {
					return 0
				}
				return float64(r.Disagreeing) / float64(r.Candidates)
			}(),
		})
	}
	for _, rec := range res.Collector.Records() {
		d := JobDefect{
			Key: rec.Key, Unit: rec.Unit, Count: rec.Count,
			Category: string(rec.Category), Race: rec.Race,
		}
		for _, l := range rec.Labels {
			d.Labels = append(d.Labels, string(l))
		}
		jr.Defects = append(jr.Defects, d)
	}
	for cat, n := range res.Fill {
		jr.Categories[string(cat)] = n
	}
	return jr
}

// retire records a job's completion and evicts the oldest finished
// jobs beyond the retention bound. Evicted ids answer 404; live
// (queued/running) jobs are never evicted.
func (m *jobManager) retire(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished = append(m.finished, id)
	for len(m.finished) > m.retain {
		old := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, old)
		for i, oid := range m.order {
			if oid == old {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
}

// campaignUnits expands a validated spec into sweep units, one per
// pattern (or prog:<name> program) × strategy, mirroring
// `racedetect -campaign`.
func campaignUnits(spec JobSpec) []sweep.Unit {
	var units []sweep.Unit
	for _, id := range spec.Patterns {
		var prog func(*sched.G)
		if name, isProg := strings.CutPrefix(id, "prog:"); isProg {
			ip, _ := instrument.ProgramByName(name) // validated at submit
			prog = ip.Racy
			if spec.Variant == "fixed" {
				prog = ip.Fixed
			}
		} else {
			p, _ := patterns.ByID(id) // validated at submit
			prog = p.Racy
			if spec.Variant == "fixed" {
				prog = p.Fixed
			}
		}
		for _, strat := range spec.Strategies {
			units = append(units, sweep.Unit{
				ID:         id + "/" + strat,
				Program:    prog,
				Detector:   spec.Detector,
				Strategy:   strat,
				BaseSeed:   spec.BaseSeed,
				Runs:       spec.Seeds,
				MaxSteps:   1 << 16,
				SampleRate: spec.Sample,
				// Recording feeds the classifier's hints; corpus
				// programs are small and nothing survives the run.
				Record: true,
			})
		}
	}
	return units
}

// buildResult renders the campaign aggregates into the wire result.
// Defect categories and the tally both come from the Collector's
// hint-classified records, so they cannot contradict each other.
func buildResult(stats sweep.Stats, aggs []sweep.Aggregator) *JobResult {
	res := &JobResult{
		Units: stats.Units, Shards: stats.Shards,
		Runs: stats.Runs, Racy: stats.Racy,
		Categories: make(map[string]int),
	}
	for _, s := range aggs[0].(*sweep.Prob).Stats() {
		res.UnitResults = append(res.UnitResults, JobUnitResult{
			Unit: s.Unit, Detector: s.Detector, Strategy: s.Strategy,
			Runs: s.Runs, Detected: s.Detected, Races: s.Races,
			Probability: s.Probability(),
		})
	}
	for _, rec := range aggs[1].(*corpus.Collector).Records() {
		d := JobDefect{
			Key: rec.Key, Unit: rec.Unit, Count: rec.Count,
			Category: string(rec.Category), Race: rec.Race,
		}
		for _, l := range rec.Labels {
			d.Labels = append(d.Labels, string(l))
		}
		res.Defects = append(res.Defects, d)
		if rec.Category != "" {
			res.Categories[string(rec.Category)]++
		}
	}
	return res
}

// drain stops intake, lets queued and running jobs finish, and — if
// ctx expires first — cancels the remaining campaigns (they finish as
// failed) before returning ctx's error.
func (m *jobManager) drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.cancel() // abort in-flight campaigns; workers mark them failed
		<-done
		return ctx.Err()
	}
}
