package service

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"time"

	"gorace/internal/corpus"
	"gorace/internal/stream"
)

// ingestResponse summarizes one ingested event stream.
type ingestResponse struct {
	Run        string `json:"run"`
	Detector   string `json:"detector"`
	Events     uint64 `json:"events"`
	Reports    int    `json:"reports"`
	NewDefects int    `json:"new_defects"`
	Evictions  int    `json:"evictions"`
	Reloads    int    `json:"reloads"`
	Generation uint64 `json:"generation"`
}

// handleIngest serves POST /v1/ingest: the request body is a binary
// trace stream (the codec cmd/racedetect records and trace.Encoder
// writes), detected online under the server's ingest configuration
// and folded into the corpus as one run. Query parameters:
//
//	run      run id to record the stream under (required, must be new)
//	unit     unit id defects are attributed to (default "stream")
//	detector registry detector name (default fasttrack, upgraded to
//	         fasttrack-paged under a ceiling)
//	seed     opaque stream id recorded as the defects' seed
//
// Concurrency is bounded by Config.IngestStreams: past it the server
// answers 429 + Retry-After — backpressure, not buffering. Drain
// lets in-flight ingests finish until its context expires, then
// cancels them; a cancelled ingest publishes nothing.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if s.cfg.Store == nil {
		writeError(w, http.StatusServiceUnavailable, "worker node: ingest streams on the coordinator")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining; no new ingests")
		return
	}
	q := r.URL.Query()
	run := q.Get("run")
	if run == "" {
		writeError(w, http.StatusBadRequest, "ingest requires a run id (?run=)")
		return
	}
	if s.View().HasRun(run) {
		writeError(w, http.StatusConflict, "run id %q already recorded", run)
		return
	}
	seed := int64(0)
	if raw := q.Get("seed"); raw != "" {
		var err error
		if seed, err = strconv.ParseInt(raw, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, "bad seed %q: %v", raw, err)
			return
		}
	}

	select {
	case s.ingestSem <- struct{}{}:
	default:
		// Backpressure: a bounded number of concurrent streams, an
		// explicit retry signal past it.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "ingest streams saturated (%d); retry later", cap(s.ingestSem))
		return
	}
	defer func() { <-s.ingestSem }()
	// Register with the drain WaitGroup under the mutex, re-checking
	// the flag: a drain that began after the check above must either
	// see this ingest registered or turn it away here, never miss it.
	s.ingestMu.Lock()
	if s.draining.Load() {
		s.ingestMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining; no new ingests")
		return
	}
	s.ingestWG.Add(1)
	s.ingestMu.Unlock()
	defer s.ingestWG.Done()

	coll := corpus.NewCollector(run, corpus.WithRunLabel("ingest"))
	ing, err := stream.NewIngestor(stream.Config{
		Detector:      q.Get("detector"),
		MemCeilingMiB: s.cfg.IngestCeilingMiB,
		Window:        s.cfg.IngestWindow,
		Unit:          q.Get("unit"),
		Seed:          seed,
		Collector:     coll,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The ingest obeys both the request's own lifecycle and the
	// server-wide drain cancel. A stalled body cannot outlive either:
	// when cancellation fires, the pipe read unblocks with the
	// context's error and an immediate read deadline kicks the copier
	// out of a blocked body read — the server cannot even write our
	// response while a goroutine still sits inside r.Body.Read, so
	// the copier must be fully joined before responding.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.ingestCtx, cancel)
	defer stop()
	rc := http.NewResponseController(w)
	pr, pw := io.Pipe()
	copied := make(chan struct{})
	go func() {
		defer close(copied)
		_, err := io.Copy(pw, r.Body)
		pw.CloseWithError(err)
	}()
	unblock := context.AfterFunc(ctx, func() {
		pr.CloseWithError(ctx.Err())
		rc.SetReadDeadline(time.Now())
	})

	res, err := ing.Ingest(ctx, pr)
	cancelled := ctx.Err() != nil
	// Stop the unblocker BEFORE cancelling: on a completed ingest the
	// deferred cancel would otherwise fire it late, and its stray read
	// deadline can poison this connection's next keep-alive request
	// mid-body (the server reads it as a dead client and cancels that
	// request's context). If the ingest failed with the stream only
	// part-consumed, kick the copier out here instead.
	if !unblock() && !cancelled {
		// Raced with cancellation after Ingest returned; treat as done.
		cancelled = ctx.Err() != nil
	}
	if err != nil {
		pr.CloseWithError(err)
		rc.SetReadDeadline(time.Now())
	}
	cancel()
	<-copied
	pr.Close()
	if err != nil {
		if cancelled {
			writeError(w, http.StatusServiceUnavailable, "ingest cancelled after %d events: %v", res.Events, err)
			return
		}
		writeError(w, http.StatusBadRequest, "ingest failed after %d events: %v", res.Events, err)
		return
	}
	if err := s.publishCollector(coll); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Run:        run,
		Detector:   ing.DetectorName(),
		Events:     res.Events,
		Reports:    len(res.Races),
		NewDefects: res.NewDefects,
		Evictions:  res.Stats.Evictions,
		Reloads:    res.Stats.Reloads,
		Generation: s.View().Generation(),
	})
}
