package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gorace/internal/corpus"
	"gorace/internal/patterns"
)

// emptyStore opens a fresh store: campaigns do not read the store, so
// distributed/standalone comparisons don't need seeded state.
func emptyStore(t testing.TB) *corpus.Store {
	t.Helper()
	s, err := corpus.Open(filepath.Join(t.TempDir(), "corpus.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// newCoordinator boots a coordinator with a watchdog that cannot
// misfire mid-test (workers joined by hand never heartbeat).
func newCoordinator(t testing.TB, shardRuns int) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, Config{
		Store:      emptyStore(t),
		JobWorkers: 1,
		Cluster: &ClusterConfig{
			ShardRuns:      shardRuns,
			HeartbeatEvery: 50 * time.Millisecond,
			DeadAfter:      time.Hour,
		},
	})
}

// newWorkerNode boots a store-less worker node. Joining is the
// caller's move (tests POST the httptest URL straight to the
// coordinator, sidestepping the advertise-before-listen chicken and
// egg), and the handler may be wrapped to inject failures.
func newWorkerNode(t testing.TB, coordURL string, wrap func(http.Handler) http.Handler) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(Config{
		Worker: &WorkerConfig{Coordinator: coordURL},
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(svc.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return svc, ts
}

func joinWorker(t testing.TB, coordURL, workerURL string) {
	t.Helper()
	status, body, _ := post(t, coordURL+"/v1/cluster/join", fmt.Sprintf(`{"url":%q}`, workerURL))
	if status != http.StatusOK {
		t.Fatalf("join = %d %s", status, body)
	}
}

// distSpec is a campaign over 40 units (10 patterns × the 4 registered
// strategies) — wide enough that any shard size exercises out-of-order
// folding across two workers.
func distSpec(t testing.TB) string {
	t.Helper()
	ids := patterns.IDs()
	if len(ids) < 10 {
		t.Fatalf("corpus has %d patterns, want >= 10", len(ids))
	}
	spec, err := json.Marshal(JobSpec{Patterns: ids[:10], Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	return string(spec)
}

// runJobToDone submits a spec and returns the finished job's results
// stream bytes.
func runJobToDone(t testing.TB, base, spec string) []byte {
	t.Helper()
	status, body, _ := post(t, base+"/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d %s", status, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitForJob(t, base, sub.ID); st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	_, res, _ := get(t, base+"/v1/jobs/"+sub.ID+"/results")
	return res
}

// stripShardCount masks the summary's shard count: shard granularity
// is a dispatch tuning knob (the one field allowed to vary with shard
// size), while every race hash, count, and probability must not.
var shardCountRe = regexp.MustCompile(`"shards":\d+`)

func stripShardCount(res []byte) []byte {
	return shardCountRe.ReplaceAll(res, []byte(`"shards":0`))
}

// TestDistributedMatchesSingleNode is the distributed-determinism
// acceptance test: a two-worker campaign over 40 units produces a
// results stream byte-identical to a single-node run of the same spec
// — race-hash sequences, per-unit probability tables, category
// tallies, everything but the shard count — at every shard size.
func TestDistributedMatchesSingleNode(t *testing.T) {
	spec := distSpec(t)
	_, standalone := newTestServer(t, Config{Store: emptyStore(t), JobWorkers: 1})
	baseline := runJobToDone(t, standalone.URL, spec)
	if !strings.Contains(string(baseline), `"type":"defect"`) {
		t.Fatalf("baseline campaign found no defects; the comparison would be vacuous:\n%s", baseline)
	}

	// 40 units × 4 seeds: per-unit shard count is ceil(4/shardRuns).
	for _, tc := range []struct{ shardRuns, wantShards int }{
		{1, 160}, {5, 40}, {16, 40},
	} {
		tc := tc
		t.Run(fmt.Sprintf("shardRuns=%d", tc.shardRuns), func(t *testing.T) {
			_, coord := newCoordinator(t, tc.shardRuns)
			for i := 0; i < 2; i++ {
				_, wts := newWorkerNode(t, coord.URL, nil)
				joinWorker(t, coord.URL, wts.URL)
			}
			res := runJobToDone(t, coord.URL, spec)
			if !bytes.Equal(stripShardCount(res), stripShardCount(baseline)) {
				t.Errorf("distributed results differ from single-node:\n got %s\nwant %s", res, baseline)
			}
			if want := fmt.Sprintf(`"shards":%d`, tc.wantShards); !strings.Contains(string(res), want) {
				t.Errorf("summary lacks %s:\n%s", want, res[:min(len(res), 200)])
			}
		})
	}
}

// TestWorkerCrashRedispatches kills one of two workers after its first
// shard and checks the campaign still completes with results
// byte-identical to single-node: the dead worker's shards re-dispatch
// to the survivor, and the duplicate guard keeps any half-delivered
// work from folding twice.
func TestWorkerCrashRedispatches(t *testing.T) {
	spec := distSpec(t)
	_, standalone := newTestServer(t, Config{Store: emptyStore(t), JobWorkers: 1})
	baseline := runJobToDone(t, standalone.URL, spec)

	coordSvc, coord := newCoordinator(t, 4)
	_, healthy := newWorkerNode(t, coord.URL, nil)

	var served atomic.Int32
	_, flaky := newWorkerNode(t, coord.URL, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shards" && served.Add(1) > 1 {
				http.Error(w, "injected crash", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	joinWorker(t, coord.URL, healthy.URL)
	joinWorker(t, coord.URL, flaky.URL)

	res := runJobToDone(t, coord.URL, spec)
	if !bytes.Equal(stripShardCount(res), stripShardCount(baseline)) {
		t.Errorf("results after worker crash differ from single-node:\n got %s\nwant %s", res, baseline)
	}
	if served.Load() < 2 {
		t.Fatalf("flaky worker served %d shard requests; the crash never triggered", served.Load())
	}
	// The coordinator retired the crashed worker.
	var status clusterResponse
	_, body, _ := get(t, coord.URL+"/v1/cluster")
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	for _, ws := range status.Workers {
		if ws.URL == flaky.URL && ws.Live {
			t.Errorf("crashed worker %s still listed live", ws.URL)
		}
		if ws.URL == healthy.URL && !ws.Live {
			t.Errorf("healthy worker %s listed dead", ws.URL)
		}
	}
	if n := coordSvc.cluster.reg.liveCount(); n != 1 {
		t.Errorf("liveCount = %d, want 1", n)
	}
}

// TestDuplicateShardResultsDropped pins the dedup guard at the queue
// level: the second delivery of a shard id is dropped, and a requeue
// of a delivered shard is a no-op.
func TestDuplicateShardResultsDropped(t *testing.T) {
	q := newDispatchQueue(2)
	ctx := context.Background()
	if idx, ok := q.take(ctx); !ok || idx != 0 {
		t.Fatalf("first take = %d,%v", idx, ok)
	}
	if idx, ok := q.take(ctx); !ok || idx != 1 {
		t.Fatalf("second take = %d,%v", idx, ok)
	}
	resp := &shardResponse{ShardIdx: 1}
	if !q.deliver(1, resp) {
		t.Fatal("first delivery dropped")
	}
	if q.deliver(1, resp) {
		t.Fatal("duplicate delivery accepted")
	}
	q.requeue(1) // late failure report for a delivered shard: no-op
	if !q.deliver(0, &shardResponse{ShardIdx: 0}) {
		t.Fatal("shard 0 delivery dropped")
	}
	if len(q.results) != 2 {
		t.Fatalf("results buffered = %d, want 2 (duplicate folded in)", len(q.results))
	}
	if _, ok := q.take(ctx); ok {
		t.Fatal("take succeeded on a finished campaign")
	}
}

// TestNoLiveWorkersFailsFast: a coordinator with an empty (or fully
// dead) fleet rejects submissions with 503 at the door, and a fleet
// that dies mid-campaign fails the job instead of hanging it.
func TestNoLiveWorkersFailsFast(t *testing.T) {
	_, coord := newCoordinator(t, 4)
	status, body, _ := post(t, coord.URL+"/v1/jobs", `{"patterns":["capture-loop-index"],"seeds":2}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit with no workers = %d %s, want 503", status, body)
	}

	// A "worker" that always crashes: the whole fleet dies on the first
	// dispatch and the job must finish failed, promptly.
	crash := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer crash.Close()
	joinWorker(t, coord.URL, crash.URL)

	status, body, _ = post(t, coord.URL+"/v1/jobs", `{"patterns":["capture-loop-index"],"seeds":2}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d %s", status, body)
	}
	var sub submitResponse
	json.Unmarshal(body, &sub)
	st := waitForJob(t, coord.URL, sub.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "every worker died") {
		t.Fatalf("job = %s (%q), want failed with every-worker-died", st.State, st.Error)
	}
}

// TestHealthzRoles pins the role field and the worker node's jobs-API
// refusal.
func TestHealthzRoles(t *testing.T) {
	_, standalone := newTestServer(t, Config{Store: emptyStore(t)})
	if _, body, _ := get(t, standalone.URL+"/healthz"); !strings.Contains(string(body), `"role": "standalone"`) {
		t.Errorf("standalone healthz: %s", body)
	}
	_, coord := newCoordinator(t, 4)
	if _, body, _ := get(t, coord.URL+"/healthz"); !strings.Contains(string(body), `"role": "coordinator"`) {
		t.Errorf("coordinator healthz: %s", body)
	}
	_, wts := newWorkerNode(t, coord.URL, nil)
	if _, body, _ := get(t, wts.URL+"/healthz"); !strings.Contains(string(body), `"role": "worker"`) {
		t.Errorf("worker healthz: %s", body)
	}
	if status, _, _ := post(t, wts.URL+"/v1/jobs", `{}`); status != http.StatusServiceUnavailable {
		t.Errorf("worker jobs submit = %d, want 503", status)
	}
	if status, _, _ := get(t, wts.URL+"/v1/jobs/job-000001"); status != http.StatusServiceUnavailable {
		t.Errorf("worker job get = %d, want 503", status)
	}
	// Cluster endpoints exist only on coordinators.
	if status, _, _ := get(t, standalone.URL+"/v1/cluster"); status != http.StatusNotFound {
		t.Errorf("standalone /v1/cluster = %d, want 404", status)
	}
	if status, _, _ := post(t, standalone.URL+"/v1/shards", `{}`); status != http.StatusNotFound {
		t.Errorf("standalone /v1/shards = %d, want 404", status)
	}
}

// TestReplicaReads replicates a seeded coordinator's snapshot onto a
// worker and checks the read API answers byte-identically, that the
// steady-state pull is a 304, and that a campaign publish (JobSpec
// RunID) moves the generation the replica then catches up to.
func TestReplicaReads(t *testing.T) {
	store, _ := seedStore(t)
	_, coord := newTestServer(t, Config{
		Store:      store,
		JobWorkers: 1,
		Cluster:    &ClusterConfig{ShardRuns: 4, DeadAfter: time.Hour},
	})
	workerSvc, wts := newWorkerNode(t, coord.URL, nil)
	joinWorker(t, coord.URL, wts.URL)

	if moved, err := workerSvc.PullReplica(); err != nil || !moved {
		t.Fatalf("initial pull = %v, %v (want moved)", moved, err)
	}
	if moved, err := workerSvc.PullReplica(); err != nil || moved {
		t.Fatalf("steady-state pull = %v, %v (want 304, no move)", moved, err)
	}

	for _, path := range []string{
		"/v1/stats",
		"/v1/races?sort=count&limit=5",
		"/v1/races?unit=svc-a/TestLoop",
		"/v1/diff?a=run-001&b=run-002",
	} {
		_, origin, _ := get(t, coord.URL+path)
		_, replica, _ := get(t, wts.URL+path)
		if !bytes.Equal(origin, replica) {
			t.Errorf("%s differs between origin and replica:\n got %s\nwant %s", path, replica, origin)
		}
	}

	// A distributed campaign published under a run id moves the
	// coordinator's generation; the replica catches up on next pull and
	// serves the new run.
	gen := workerSvc.View().Generation()
	spec, _ := json.Marshal(JobSpec{Patterns: patterns.IDs()[:2], Seeds: 4, RunID: "dist-run-1"})
	runJobToDone(t, coord.URL, string(spec))
	if moved, err := workerSvc.PullReplica(); err != nil || !moved {
		t.Fatalf("post-publish pull = %v, %v (want moved)", moved, err)
	}
	if g := workerSvc.View().Generation(); g <= gen {
		t.Errorf("replica generation %d did not advance past %d", g, gen)
	}
	if !workerSvc.View().HasRun("dist-run-1") {
		t.Error("replica missing published run dist-run-1")
	}
	// Duplicate run ids bounce at submit.
	if status, body, _ := post(t, coord.URL+"/v1/jobs", string(spec)); status != http.StatusBadRequest {
		t.Errorf("duplicate runId submit = %d %s, want 400", status, body)
	}
	_, origin, _ := get(t, coord.URL+"/v1/stats")
	_, replica, _ := get(t, wts.URL+"/v1/stats")
	if !bytes.Equal(origin, replica) {
		t.Errorf("post-publish stats differ:\n got %s\nwant %s", replica, origin)
	}
}

// TestShardEndpointValidation pins the worker's door checks: malformed
// bodies, unknown specs, and out-of-range shard coordinates all answer
// 400 without executing anything.
func TestShardEndpointValidation(t *testing.T) {
	_, coord := newCoordinator(t, 4)
	_, wts := newWorkerNode(t, coord.URL, nil)
	for _, bad := range []string{
		`{`,
		`{"bogus":true}`,
		`{"runId":"","spec":{},"shardIdx":0,"shard":{"unitIdx":0,"lo":0,"n":1}}`,
		`{"runId":"r","spec":{"patterns":["no-such"]},"shardIdx":0,"shard":{"unitIdx":0,"lo":0,"n":1}}`,
		`{"runId":"r","spec":{"patterns":["capture-loop-index"],"seeds":4},"shardIdx":0,"shard":{"unitIdx":99,"lo":0,"n":1}}`,
		`{"runId":"r","spec":{"patterns":["capture-loop-index"],"seeds":4},"shardIdx":0,"shard":{"unitIdx":0,"lo":3,"n":4}}`,
	} {
		if status, body, _ := post(t, wts.URL+"/v1/shards", bad); status != http.StatusBadRequest {
			t.Errorf("shard request %s = %d %s, want 400", bad, status, body)
		}
	}
}

// TestStaleHeartbeatRetiresWorker drives the watchdog end to end: a
// worker that hangs without heartbeating is declared dead mid-campaign
// and its shards finish on the survivor.
func TestStaleHeartbeatRetiresWorker(t *testing.T) {
	spec := distSpec(t)
	_, standalone := newTestServer(t, Config{Store: emptyStore(t), JobWorkers: 1})
	baseline := runJobToDone(t, standalone.URL, spec)

	_, coord := newTestServer(t, Config{
		Store:      emptyStore(t),
		JobWorkers: 1,
		Cluster: &ClusterConfig{
			ShardRuns:      4,
			HeartbeatEvery: 20 * time.Millisecond,
			DeadAfter:      200 * time.Millisecond,
			ShardTimeout:   time.Minute,
		},
	})
	_, healthy := newWorkerNode(t, coord.URL, nil)

	// A worker that accepts shard dispatches and then hangs forever —
	// only the stale-heartbeat watchdog can unstick the campaign.
	// Defer order matters: close(hang) must release the stuck handlers
	// before hung.Close waits them out (defers run last-in-first-out).
	hang := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hang
	}))
	defer hung.Close()
	defer close(hang)

	joinWorker(t, coord.URL, healthy.URL)
	joinWorker(t, coord.URL, hung.URL)

	// Keep the healthy worker's heartbeat fresh for the duration. The
	// wait is registered before close(stop) so the stop lands first.
	var wg sync.WaitGroup
	defer wg.Wait()
	stop := make(chan struct{})
	defer close(stop)
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				resp, err := http.Post(coord.URL+"/v1/cluster/heartbeat", "application/json",
					strings.NewReader(fmt.Sprintf(`{"url":%q}`, healthy.URL)))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	res := runJobToDone(t, coord.URL, spec)
	if !bytes.Equal(stripShardCount(res), stripShardCount(baseline)) {
		t.Errorf("results after stale-worker retirement differ from single-node:\n got %s\nwant %s", res, baseline)
	}
}
