package service

import (
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Unwrap exposes the wrapped writer to http.NewResponseController,
// which needs the real connection underneath for per-request
// deadlines (the ingest handler's stalled-body kick).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Write defaults the status to 200 like net/http does.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// withLogging logs one line per request: method, path, status, and
// latency — the service's flight recorder under load.
func withLogging(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, sw.status, time.Since(start))
	})
}

// withRecovery turns a handler panic into a 500 instead of tearing
// down the whole connection (and, under http.Server, the goroutine's
// stack trace into the log rather than stderr noise).
func withRecovery(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}
