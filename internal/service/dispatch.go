package service

// The shard dispatcher: how a coordinator executes one campaign across
// its workers while keeping the results byte-identical to a local run.
//
// The local sweep engine already splits campaigns into shards and
// folds them into root aggregators in shard-index order. The
// dispatcher preserves exactly that contract over HTTP: shards are
// dispatched to any live worker in any order (bounded in-flight per
// worker), results arrive as transportable aggregates (IndexedUnitStat
// slices plus a binary corpus delta), and the merge loop buffers
// out-of-order arrivals so the fold happens in shard-index order. A
// shard is a pure function of (spec, coordinates): when a worker dies
// mid-shard, the shard is re-dispatched to a live worker and the
// duplicate-result guard (by shard id) keeps a late answer from the
// dead worker from folding twice.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gorace/internal/corpus"
	"gorace/internal/sweep"
)

// shardCoord is the wire form of sweep.Shard.
type shardCoord struct {
	UnitIdx int `json:"unitIdx"`
	Lo      int `json:"lo"`
	N       int `json:"n"`
}

// shardRequest is the POST /v1/shards body: everything a worker needs
// to execute one shard, self-contained so any worker can serve it.
type shardRequest struct {
	// RunID labels the shard's collected records (the campaign's
	// effective run id).
	RunID string `json:"runId"`
	// Spec is the validated, normalized campaign spec; the worker
	// expands it to the same unit list the coordinator planned over.
	Spec JobSpec `json:"spec"`
	// ShardIdx is the shard's index in the campaign plan (echoed back;
	// the coordinate results fold by).
	ShardIdx int `json:"shardIdx"`
	// Shard locates the seed slice within the campaign's units.
	Shard shardCoord `json:"shard"`
}

// shardResponse is the worker's answer: the shard's aggregates in
// transportable form.
type shardResponse struct {
	// ShardIdx echoes the request.
	ShardIdx int `json:"shardIdx"`
	// Runs and Racy are the shard's execution counts.
	Runs int `json:"runs"`
	Racy int `json:"racy"`
	// Stats is the shard's per-unit Prob state.
	Stats []sweep.IndexedUnitStat `json:"stats"`
	// Executions and Reports are the shard collector's raw counts.
	Executions int `json:"executions"`
	Reports    int `json:"reports"`
	// Corpus is a binary corpus delta (delta.go framing) holding the
	// shard's deduplicated records — the exact-fidelity transport for
	// stacks and race hashes.
	Corpus []byte `json:"corpus"`
}

// remoteShard pairs a delivered response with its shard index.
type remoteShard struct {
	idx  int
	resp *shardResponse
}

// dispatchQueue coordinates shard hand-out and result delivery for one
// campaign. Pending shards are taken by worker goroutines, failed ones
// are requeued (re-dispatch after a worker death), and deliveries are
// deduplicated by shard id so a shard folds exactly once no matter how
// many workers ultimately answered it.
type dispatchQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	pending   []int
	delivered []bool
	done      int
	total     int
	failErr   error
	failCh    chan struct{}
	results   chan remoteShard
}

func newDispatchQueue(total int) *dispatchQueue {
	q := &dispatchQueue{
		pending:   make([]int, total),
		delivered: make([]bool, total),
		total:     total,
		failCh:    make(chan struct{}),
		results:   make(chan remoteShard, total),
	}
	for i := range q.pending {
		q.pending[i] = i
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// take blocks until a shard is available and claims it; ok=false means
// the campaign is over for this taker (all shards delivered, the
// campaign failed, or ctx — the taker's node context — ended).
func (q *dispatchQueue) take(ctx context.Context) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pending) == 0 && q.done < q.total && q.failErr == nil && ctx.Err() == nil {
		q.cond.Wait()
	}
	if q.failErr != nil || q.done == q.total || ctx.Err() != nil {
		return 0, false
	}
	idx := q.pending[0]
	q.pending = q.pending[1:]
	return idx, true
}

// requeue returns a failed shard to the pending set (unless some other
// dispatch already delivered it).
func (q *dispatchQueue) requeue(idx int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.delivered[idx] {
		return
	}
	q.pending = append(q.pending, idx)
	q.cond.Broadcast()
}

// deliver records a shard result; a duplicate (same shard id already
// delivered, e.g. a slow worker answering after its shard was
// re-dispatched) is dropped and reported false.
func (q *dispatchQueue) deliver(idx int, resp *shardResponse) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.delivered[idx] {
		return false
	}
	q.delivered[idx] = true
	q.done++
	q.results <- remoteShard{idx: idx, resp: resp} // buffered to total: never blocks
	q.cond.Broadcast()
	return true
}

// fail ends the campaign with err (first failure wins) and wakes every
// blocked taker.
func (q *dispatchQueue) fail(err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.failErr == nil {
		q.failErr = err
		close(q.failCh)
	}
	q.cond.Broadcast()
}

// wake re-checks every blocked taker's exit conditions (called after a
// node context is cancelled, which cond.Wait cannot observe).
func (q *dispatchQueue) wake() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

// runJob executes one campaign across the live workers and returns
// root aggregators and stats shaped exactly like the local engine's:
// aggs[0] a *sweep.Prob, aggs[1] a *corpus.Collector, both folded in
// shard-index order — so buildResult renders a byte-identical JobResult
// for a distributed and a single-node run of the same spec.
func (c *cluster) runJob(ctx context.Context, runID string, spec JobSpec, units []sweep.Unit, onProgress func(sweep.Progress)) ([]sweep.Aggregator, sweep.Stats, error) {
	shards := sweep.Plan(units, c.cfg.ShardRuns)
	stats := sweep.Stats{Units: len(units), Shards: len(shards)}
	probRoot := sweep.NewProb()
	collRoot := corpus.NewCollector(runID)
	roots := []sweep.Aggregator{probRoot, collRoot}
	if len(shards) == 0 {
		return roots, stats, nil
	}
	nodes := c.reg.liveURLs()
	if len(nodes) == 0 {
		return nil, stats, ErrNoWorkers
	}
	unitIdx := make(map[string]int, len(units))
	for i := range units {
		unitIdx[units[i].ID] = i
	}

	q := newDispatchQueue(len(shards))
	jobCtx, cancelAll := context.WithCancel(ctx)
	var wg sync.WaitGroup
	// One defer, one order: cancel every context, then broadcast so
	// takers blocked in cond.Wait re-check (cond.Wait cannot observe a
	// context), then join the goroutines. Splitting these into separate
	// defers would run them LIFO — wg.Wait before the cancel that lets
	// the watchdog exit — and deadlock every return path.
	defer func() {
		cancelAll()
		q.wake()
		wg.Wait()
	}()

	// Per-node contexts let the watchdog abort a dead node's in-flight
	// dispatches without touching the rest of the campaign. The maps
	// are fully built before any goroutine starts and read-only after.
	ctxs := make(map[string]context.Context, len(nodes))
	cancels := make(map[string]context.CancelFunc, len(nodes))
	for _, u := range nodes {
		nodeCtx, nodeCancel := context.WithCancel(jobCtx)
		ctxs[u], cancels[u] = nodeCtx, nodeCancel
	}

	live := int32(len(nodes))
	// retire handles a node death exactly once (markDead serializes
	// racing callers): abort its in-flight dispatches, wake its blocked
	// takers, and fail the campaign if nobody is left to execute it.
	retire := func(nodeURL string, cause error) {
		if !c.reg.markDead(nodeURL) {
			return
		}
		c.log.Printf("cluster: worker %s dead, re-dispatching its shards: %v", nodeURL, cause)
		cancels[nodeURL]()
		q.wake()
		if atomic.AddInt32(&live, -1) == 0 {
			q.fail(fmt.Errorf("service: every worker died mid-campaign (last %s: %v)", nodeURL, cause))
		}
	}

	for _, nodeURL := range nodes {
		nodeURL := nodeURL
		nodeCtx := ctxs[nodeURL]
		for k := 0; k < c.cfg.MaxInflight; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					idx, ok := q.take(nodeCtx)
					if !ok {
						return
					}
					resp, err := c.postShard(nodeCtx, nodeURL, runID, spec, shards[idx], idx)
					if err != nil {
						q.requeue(idx)
						if jobCtx.Err() == nil {
							retire(nodeURL, err)
						}
						return
					}
					if q.deliver(idx, resp) {
						c.reg.addDone(nodeURL)
					}
				}
			}()
		}
	}

	// Heartbeat watchdog: a worker that stops beating while holding
	// shards is retired, which requeues its shards onto live workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(c.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-jobCtx.Done():
				return
			case <-t.C:
				for _, u := range c.reg.staleLive(time.Now()) {
					if _, inJob := cancels[u]; inJob {
						retire(u, fmt.Errorf("heartbeat stale"))
					}
				}
			}
		}
	}()

	// Deterministic merge loop: buffer out-of-order deliveries and fold
	// in shard-index order, exactly like the local engine.
	buffered := make(map[int]*shardResponse)
	folded := 0
	for folded < len(shards) {
		select {
		case <-ctx.Done():
			q.fail(ctx.Err())
			return nil, stats, ctx.Err()
		case <-q.failCh:
			return nil, stats, q.failErr
		case rs := <-q.results:
			buffered[rs.idx] = rs.resp
			for {
				resp, ok := buffered[folded]
				if !ok {
					break
				}
				delete(buffered, folded)
				if err := foldShard(probRoot, collRoot, runID, resp, unitIdx, &stats); err != nil {
					err = fmt.Errorf("service: shard %d result: %w", folded, err)
					q.fail(err)
					return nil, stats, err
				}
				folded++
				if onProgress != nil {
					onProgress(sweep.Progress{
						DoneShards:  folded,
						TotalShards: len(shards),
						Runs:        stats.Runs,
						Racy:        stats.Racy,
					})
				}
			}
		}
	}
	return roots, stats, nil
}

// foldShard reconstructs a transported shard result as local
// aggregators and folds it into the campaign roots — the remote
// mirror of the engine's per-shard Merge.
func foldShard(prob *sweep.Prob, coll *corpus.Collector, runID string, resp *shardResponse, unitIdx map[string]int, stats *sweep.Stats) error {
	x, err := corpus.ReadDelta(bytes.NewReader(resp.Corpus))
	if err != nil {
		return err
	}
	shardColl, err := corpus.NewCollectorFromRecords(runID, resp.Executions, resp.Reports, x.Records, unitIdx)
	if err != nil {
		return err
	}
	prob.Merge(sweep.NewProbFromStats(resp.Stats))
	coll.Merge(shardColl)
	stats.Runs += resp.Runs
	stats.Racy += resp.Racy
	return nil
}

// postShard dispatches one shard to a worker and decodes the result.
func (c *cluster) postShard(ctx context.Context, nodeURL, runID string, spec JobSpec, sh sweep.Shard, idx int) (*shardResponse, error) {
	body, err := json.Marshal(shardRequest{
		RunID:    runID,
		Spec:     spec,
		ShardIdx: idx,
		Shard:    shardCoord{UnitIdx: sh.UnitIdx, Lo: sh.Lo, N: sh.N},
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, nodeURL+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("worker %s shard %d: status %d: %s",
			nodeURL, idx, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var sr shardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("worker %s shard %d: decode: %w", nodeURL, idx, err)
	}
	if sr.ShardIdx != idx {
		return nil, fmt.Errorf("worker %s answered shard %d for shard %d", nodeURL, sr.ShardIdx, idx)
	}
	return &sr, nil
}
