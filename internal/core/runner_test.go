package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"gorace/internal/sched"
)

func TestRunnerDefaults(t *testing.T) {
	out, err := NewRunner(WithSeed(3)).Run(racy())
	if err != nil {
		t.Fatal(err)
	}
	if out.Detector != "fasttrack-hb" || out.Strategy != "random" {
		t.Fatalf("defaults = %s / %s", out.Detector, out.Strategy)
	}
	if out.Seed != 3 {
		t.Fatalf("seed = %d", out.Seed)
	}
	if out.Trace != nil {
		t.Fatal("trace recorded without WithRecord")
	}
	if out.Stats.Events == 0 {
		t.Fatal("stats not collected")
	}
}

func TestRunnerUnknownNames(t *testing.T) {
	if _, err := NewRunner(WithDetector("magic")).Run(racy()); err == nil {
		t.Fatal("unknown detector accepted")
	}
	if _, err := NewRunner(WithStrategy("magic")).Run(racy()); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	// Batches surface configuration errors instead of hanging.
	if _, err := NewRunner(WithDetector("magic")).RunBatch(racy(), Seeds(0, 4)); err == nil {
		t.Fatal("batch with unknown detector succeeded")
	}
	if _, err := NewRunner(WithDetector("magic")).DetectionProbability(racy(), 4); err == nil {
		t.Fatal("probability with unknown detector succeeded")
	}
}

func TestRunnerAllRegisteredCombos(t *testing.T) {
	// Every registered detector under every registered strategy runs
	// through the same code path, the point of the registry redesign.
	for _, det := range []string{"fasttrack", "epoch", "djit", "eraser", "hybrid", "none"} {
		for _, strat := range []string{"random", "roundrobin", "pct", "delay"} {
			out, err := NewRunner(WithDetector(det), WithStrategy(strat), WithSeed(1)).Run(racy())
			if err != nil {
				t.Fatalf("%s/%s: %v", det, strat, err)
			}
			if out.Result == nil {
				t.Fatalf("%s/%s: no run result", det, strat)
			}
			if det == "none" && out.HasRace() {
				t.Fatalf("%s/%s: the none detector detected something", det, strat)
			}
		}
	}
}

func TestRunnerStrategyFactory(t *testing.T) {
	// A replayed empty prefix falls back to first-runnable: the run
	// must complete and identify itself as the replay strategy.
	out, err := NewRunner(
		WithStrategyFactory(func() sched.Strategy { return sched.NewReplay(nil) }),
	).Run(fixed())
	if err != nil {
		t.Fatal(err)
	}
	if out.Strategy != "replay" {
		t.Fatalf("strategy = %q", out.Strategy)
	}
	if _, err := NewRunner(
		WithStrategyFactory(func() sched.Strategy { return nil }),
	).Run(fixed()); err == nil {
		t.Fatal("nil-returning factory accepted")
	}
}

func TestBatchInvokesFactoryOncePerRun(t *testing.T) {
	// WithStrategyFactory promises exactly one invocation per run;
	// batch validation must not consume a strategy from a stateful
	// factory.
	var mu sync.Mutex
	calls := 0
	r := NewRunner(WithStrategyFactory(func() sched.Strategy {
		mu.Lock()
		calls++
		mu.Unlock()
		return sched.NewRandom()
	}), WithParallelism(4))
	if _, err := r.RunBatch(fixed(), Seeds(0, 10)); err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("factory invoked %d times for 10 runs", calls)
	}
}

func TestStreamBatchAbandonedEarlyLeaksNothing(t *testing.T) {
	// Breaking out of the stream must not deadlock the workers: the
	// channel buffer holds the whole batch.
	before := runtime.NumGoroutine()
	for br := range NewRunner(WithParallelism(4)).StreamBatch(racy(), Seeds(0, 12)) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		break // abandon after the first result
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked after abandoning stream: %d > %d", n, before)
	}
}

func TestRunnerCountingDetectorOutcome(t *testing.T) {
	// Counting detectors surface verdicts through the same Races
	// surface (one synthesized report per racy address) plus the pair
	// count; no parallel channel needed.
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		out, err := NewRunner(WithDetector("epoch"), WithSeed(seed)).Run(racy())
		if err != nil {
			t.Fatal(err)
		}
		if out.HasRace() {
			found = true
			if len(out.Races) == 0 || out.RaceCount == 0 {
				t.Fatalf("races=%d count=%d; want both set", len(out.Races), out.RaceCount)
			}
			if out.RaceCount != out.Stats.Reports {
				t.Fatalf("RaceCount %d != Stats.Reports %d", out.RaceCount, out.Stats.Reports)
			}
		}
	}
	if !found {
		t.Fatal("epoch detector never flagged the racy program")
	}
}

func TestRunBatchOrderAndSeeds(t *testing.T) {
	seeds := []int64{9, 2, 5, 2}
	outs, err := NewRunner(WithParallelism(3)).RunBatch(racy(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(seeds) {
		t.Fatalf("%d outcomes for %d seeds", len(outs), len(seeds))
	}
	for i, out := range outs {
		if out == nil || out.Seed != seeds[i] {
			t.Fatalf("outcome %d mismatched: %+v", i, out)
		}
	}
}

func TestRunBatchParallelMatchesSerial(t *testing.T) {
	// Outcomes are per-seed deterministic, so the batch result must be
	// identical at any parallelism level.
	seeds := Seeds(0, 24)
	serial, err := NewRunner(WithParallelism(1)).RunBatch(racy(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(WithParallelism(8)).RunBatch(racy(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		a, b := serial[i], parallel[i]
		if len(a.Races) != len(b.Races) {
			t.Fatalf("seed %d: %d vs %d races", seeds[i], len(a.Races), len(b.Races))
		}
		for j := range a.Races {
			if a.Races[j].Hash() != b.Races[j].Hash() {
				t.Fatalf("seed %d: report %d differs between parallelism levels", seeds[i], j)
			}
		}
	}
}

func TestRunBatchEmptySeeds(t *testing.T) {
	outs, err := NewRunner().RunBatch(racy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("%d outcomes for empty sweep", len(outs))
	}
}

func TestStreamBatchDeliversEverySeed(t *testing.T) {
	seen := make(map[int]bool)
	for br := range NewRunner(WithParallelism(4)).StreamBatch(racy(), Seeds(10, 16)) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		if br.Outcome.Seed != int64(10+br.Index) {
			t.Fatalf("index %d carries seed %d", br.Index, br.Outcome.Seed)
		}
		if seen[br.Index] {
			t.Fatalf("index %d delivered twice", br.Index)
		}
		seen[br.Index] = true
	}
	if len(seen) != 16 {
		t.Fatalf("%d results for 16 seeds", len(seen))
	}
}

func TestRunnerDetectionProbability(t *testing.T) {
	r := NewRunner(WithParallelism(4))
	p, err := r.DetectionProbability(racy(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Fatalf("P = %f", p)
	}
	pf, err := r.DetectionProbability(fixed(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if pf != 0 {
		t.Fatalf("fixed P = %f, want 0", pf)
	}
	// The deprecated serial entry point must agree with the Runner.
	ps, err := DetectionProbability(racy(), Config{}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ps != p {
		t.Fatalf("serial P %f != parallel P %f", ps, p)
	}
}

func TestSeedsHelper(t *testing.T) {
	s := Seeds(5, 3)
	if len(s) != 3 || s[0] != 5 || s[2] != 7 {
		t.Fatalf("Seeds(5,3) = %v", s)
	}
	if len(Seeds(0, -1)) != 0 {
		t.Fatal("negative count did not clamp")
	}
}

func TestDetectShimMatchesRunner(t *testing.T) {
	// The deprecated facade must produce exactly what the Runner does.
	a, err := Detect(racy(), Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(WithSeed(11)).Run(racy())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Races) != len(b.Races) {
		t.Fatalf("shim %d races, runner %d", len(a.Races), len(b.Races))
	}
	for i := range a.Races {
		if a.Races[i].Hash() != b.Races[i].Hash() {
			t.Fatal("shim and runner reports differ")
		}
	}
}

func TestRunBatchRecycledStateMatchesFresh(t *testing.T) {
	// A serial batch reuses one detector via Reset across all seeds;
	// per-seed RunSeed builds a fresh detector each time. Both must
	// produce identical reports — the recycled shadow state must not
	// leak detection state (or alias report slices) between seeds.
	for _, det := range []string{"fasttrack", "epoch", "djit", "eraser", "hybrid"} {
		runner := NewRunner(WithDetector(det), WithRecord(true))
		seeds := Seeds(0, 16)
		batch, err := runner.RunBatch(racy(), seeds)
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			fresh, err := runner.RunSeed(racy(), seed)
			if err != nil {
				t.Fatal(err)
			}
			got, want := batch[i], fresh
			if len(got.Races) != len(want.Races) || got.RaceCount != want.RaceCount {
				t.Fatalf("%s seed %d: recycled %d races (count %d), fresh %d (count %d)",
					det, seed, len(got.Races), got.RaceCount, len(want.Races), want.RaceCount)
			}
			for j := range got.Races {
				if got.Races[j].Hash() != want.Races[j].Hash() {
					t.Fatalf("%s seed %d: report %d differs between recycled and fresh state", det, seed, j)
				}
			}
			if len(got.Trace.Events) != len(want.Trace.Events) {
				t.Fatalf("%s seed %d: recycled trace %d events, fresh %d",
					det, seed, len(got.Trace.Events), len(want.Trace.Events))
			}
		}
	}
}
