package core_test

import (
	"fmt"

	"gorace/internal/core"
	"gorace/internal/sched"
)

// ExampleNewRunner runs one modeled program under a registered
// detector and scheduling strategy. The program races by
// construction — two goroutines store to the same variable with no
// synchronization — so the report manifests under every schedule.
func ExampleNewRunner() {
	prog := func(g *sched.G) {
		counter := sched.NewVar[int](g, "counter")
		g.Go("worker", func(g *sched.G) {
			counter.Store(g, 1) // unsynchronized write in the child
		})
		counter.Store(g, 2) // concurrent write in the parent
	}

	runner := core.NewRunner(
		core.WithDetector("fasttrack"),
		core.WithStrategy("random"),
		core.WithSeed(1), // a fixed seed reproduces the run exactly
	)
	out, err := runner.Run(prog)
	if err != nil {
		panic(err)
	}
	fmt.Printf("detector: %s\n", out.Detector)
	fmt.Printf("races: %d on variable %q\n", len(out.Races), out.Races[0].Var())
	// Output:
	// detector: fasttrack-hb
	// races: 1 on variable "counter"
}

// ExampleRunner_DetectionProbability estimates how often a race
// manifests across seeds — the paper's §3.2.1 flakiness measure. The
// racing example program manifests under every schedule, so the
// estimate is 1.
func ExampleRunner_DetectionProbability() {
	prog := func(g *sched.G) {
		flag := sched.NewVar[bool](g, "flag")
		g.Go("setter", func(g *sched.G) {
			flag.Store(g, true)
		})
		flag.Load(g)
	}
	runner := core.NewRunner(core.WithDetector("fasttrack"))
	p, err := runner.DetectionProbability(prog, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(detect) = %.2f over 20 seeds\n", p)
	// Output:
	// P(detect) = 1.00 over 20 seeds
}
