package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

// Runner is the one way to run detection: it binds a registered
// detector, a scheduling strategy, and run limits, and executes
// modeled programs — one seed at a time (Run) or as a parallel
// multi-seed batch (RunBatch), the fleet-scale deployment mode the
// paper argues for. A Runner is immutable after construction and safe
// for concurrent use; every run builds fresh detector and strategy
// instances from the registries.
type Runner struct {
	detectorName    string
	strategyName    string
	strategyFactory func() sched.Strategy
	seed            int64
	maxSteps        int
	record          bool
	window          int
	parallelism     int
	sampleRate      int
}

// Option configures a Runner.
type Option func(*Runner)

// WithDetector selects a registered detector by name (see
// detector.Names). Default: detector.DefaultName.
func WithDetector(name string) Option {
	return func(r *Runner) { r.detectorName = name }
}

// WithStrategy selects a registered scheduling strategy by name (see
// sched.StrategyNames). Default: sched.DefaultStrategyName.
func WithStrategy(name string) Option {
	return func(r *Runner) { r.strategyName = name }
}

// WithStrategyFactory supplies strategies programmatically, for the
// ones that need arguments a name cannot carry (replayed decision
// prefixes, recording wrappers). The factory is invoked once per run,
// possibly from concurrent batch workers. It overrides WithStrategy.
func WithStrategyFactory(f func() sched.Strategy) Option {
	return func(r *Runner) { r.strategyFactory = f }
}

// WithSeed sets the schedule seed for Run and the base seed for
// convenience sweeps; a fixed seed reproduces the run exactly.
func WithSeed(seed int64) Option {
	return func(r *Runner) { r.seed = seed }
}

// WithMaxSteps bounds each execution (0 = scheduler default).
func WithMaxSteps(n int) Option {
	return func(r *Runner) { r.maxSteps = n }
}

// WithRecord keeps the full event trace of each run for post-facto
// analysis (Outcome.Trace).
func WithRecord(record bool) Option {
	return func(r *Runner) { r.record = record }
}

// WithWindow keeps a windowed trace on each run's Outcome instead of
// a full recording: only the most recent n events per goroutine are
// retained (trace.WindowRecorder), merged in Seq order at run end.
// This is the sweep shape of streaming detection's bounded retention —
// a manifested race still carries classify-able recent context, but
// trace memory no longer scales with run length. n > 0 overrides
// WithRecord's full trace; 0 disables windowing.
func WithWindow(n int) Option {
	return func(r *Runner) { r.window = n }
}

// WithParallelism sets the worker count for RunBatch (default 1,
// i.e. serial). Runs are independent — detector and strategy state is
// per-run — so batch results are identical at any parallelism.
func WithParallelism(n int) Option {
	return func(r *Runner) { r.parallelism = n }
}

// WithSampleRate gates the detector behind a deterministic 1-in-n
// access-sampling filter (detector.WithSampleRate): sync events always
// reach the detector, accesses 1 in n. The gate's phase is derived
// from each run's seed, so sampled sweeps stay reproducible at any
// parallelism. n ≤ 1 disables sampling; negative n fails validation.
func WithSampleRate(n int) Option {
	return func(r *Runner) { r.sampleRate = n }
}

// NewRunner builds a Runner from options.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{parallelism: 1}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// newStrategy builds a fresh strategy instance for one run.
func (r *Runner) newStrategy() (sched.Strategy, error) {
	if r.strategyFactory != nil {
		s := r.strategyFactory()
		if s == nil {
			return nil, fmt.Errorf("strategy factory returned nil")
		}
		return s, nil
	}
	return sched.NewStrategy(r.strategyName)
}

// validate fails fast on unknown detector/strategy names, so a batch
// does not launch workers that would all error identically. A
// user-supplied strategy factory is deliberately NOT invoked here —
// WithStrategyFactory promises one invocation per run, and a stateful
// factory must not have a strategy consumed by validation.
func (r *Runner) validate() error {
	if _, err := r.newDetector(); err != nil {
		return err
	}
	if r.strategyFactory == nil {
		if _, err := sched.NewStrategy(r.strategyName); err != nil {
			return err
		}
	}
	return nil
}

// Run executes prog once under the Runner's seed.
func (r *Runner) Run(prog func(*sched.G)) (*Outcome, error) {
	return r.RunSeed(prog, r.seed)
}

// RunSeed executes prog once under the given seed.
func (r *Runner) RunSeed(prog func(*sched.G), seed int64) (*Outcome, error) {
	st, err := r.newRunState()
	if err != nil {
		return nil, err
	}
	return r.runSeed(st, prog, seed)
}

// runState is the per-worker detection state a batch sweep recycles
// across seeds: the detector instance (Reset in place between runs
// when it supports it) and the reusable trace buffer for record mode.
// Recycling this state is what keeps a 1000-seed RunBatch from
// allocating a thousand detectors' worth of shadow memory.
type runState struct {
	det    detector.Detector
	reset  detector.Resetter     // nil when det must be rebuilt per run
	buf    *trace.Recorder       // lazily created, record mode only
	wbuf   *trace.WindowRecorder // lazily created, window mode only
	used   bool                  // det has consumed a run since (re)build
	shared bool                  // state is recycled across runs (batch worker)
}

// newDetector builds the Runner's detector, sampling gate included.
func (r *Runner) newDetector() (detector.Detector, error) {
	return detector.New(r.detectorName, detector.WithSampleRate(r.sampleRate))
}

// newRunState builds a fresh detector and decides whether it can be
// recycled. A wrapper (Counting, Sampled) is only recyclable when the
// detector inside it is.
func (r *Runner) newRunState() (*runState, error) {
	det, err := r.newDetector()
	if err != nil {
		return nil, err
	}
	st := &runState{det: det}
	if rs, ok := det.(detector.Resetter); ok {
		st.reset = rs
	}
	if c, ok := det.(interface{ CanReset() bool }); ok && !c.CanReset() {
		st.reset = nil
	}
	return st, nil
}

// recycle readies the state for another run, rebuilding the detector
// if it cannot be reset in place.
func (st *runState) recycle(r *Runner) error {
	if !st.used {
		return nil
	}
	if st.reset != nil {
		st.reset.Reset()
		return nil
	}
	det, err := r.newDetector()
	if err != nil {
		return err
	}
	st.det = det
	return nil
}

// runSeed executes prog once on st. Results never alias recycled
// state: races and candidates are copied out of a reused detector, and
// recorded traces are snapshotted out of the reused buffer.
func (r *Runner) runSeed(st *runState, prog func(*sched.G), seed int64) (*Outcome, error) {
	strat, err := r.newStrategy()
	if err != nil {
		return nil, err
	}
	if err := st.recycle(r); err != nil {
		return nil, err
	}
	det := st.det
	if sd, ok := det.(detector.Seeded); ok {
		// A sampling gate's phase is a function of the run seed, not
		// of worker identity or scheduling order — this is what keeps
		// sampled batch results identical at any parallelism.
		sd.SetRunSeed(seed)
	}
	// A shared (batch-worker) detector is recycled after this run,
	// which would rewind its result slices — so the outcome must own
	// copies. One-shot states discard the detector; aliasing is fine.
	recyclable := st.shared && st.reset != nil
	st.used = true

	out := &Outcome{Detector: det.Name(), Strategy: strat.Name(), Seed: seed}
	var listeners []trace.Listener
	switch {
	case r.window > 0:
		if st.wbuf == nil {
			st.wbuf = trace.NewWindowRecorder(r.window)
		}
		st.wbuf.Reset()
		listeners = append(listeners, st.wbuf)
	case r.record:
		if st.buf == nil {
			st.buf = &trace.Recorder{}
		}
		st.buf.Reset()
		listeners = append(listeners, st.buf)
	}
	if !detector.IsNoop(det) {
		// The none detector observes nothing; not attaching it keeps
		// the overhead baseline free of per-event dispatch cost.
		listeners = append(listeners, det)
	}

	out.Result = sched.Run(prog, sched.Options{
		Strategy:  strat,
		Seed:      seed,
		MaxSteps:  r.maxSteps,
		Listeners: listeners,
	})

	switch {
	case r.window > 0:
		// Snapshot merges the per-goroutine rings into a fresh
		// Recorder, so windowed traces never alias recycled state.
		out.Trace = st.wbuf.Snapshot()
	case r.record:
		if st.shared {
			out.Trace = st.buf.Snapshot()
		} else {
			// One-shot state: hand the recorder over instead of
			// copying it; it will not be reused.
			out.Trace = st.buf
			st.buf = nil
		}
	}
	out.Races = det.Races()
	out.Candidates = det.Candidates()
	if recyclable {
		out.Races = append([]report.Race(nil), out.Races...)
		out.Candidates = append([]report.Race(nil), out.Candidates...)
	}
	out.Stats = det.Stats()
	if c, ok := det.(detector.Counter); ok {
		out.RaceCount = c.Count()
	}
	report.SortRaces(out.Races)
	report.SortRaces(out.Candidates)
	return out, nil
}

// Worker owns one recycled detection state bound to a Runner: the
// detector instance (Reset in place between runs when it supports it)
// and the reusable trace buffer for record mode. A sweep that pushes
// many seeds through one Worker allocates one detector's worth of
// shadow memory, not one per seed. Workers are not safe for concurrent
// use; create one per goroutine. StreamBatch and the campaign engine
// in internal/sweep are both built on Workers.
type Worker struct {
	r  *Runner
	st *runState
}

// NewWorker validates the Runner's configuration and builds a recycled
// run state for one worker goroutine.
func (r *Runner) NewWorker() (*Worker, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	st, err := r.newRunState()
	if err != nil {
		return nil, err
	}
	st.shared = true
	return &Worker{r: r, st: st}, nil
}

// RunSeed executes prog once under the given seed on the recycled
// state. The returned Outcome owns its races, candidates, and trace —
// nothing aliases state a later RunSeed will rewind.
func (w *Worker) RunSeed(prog func(*sched.G), seed int64) (*Outcome, error) {
	return w.r.runSeed(w.st, prog, seed)
}

// BatchResult is one seed's result in a batch sweep, delivered in
// completion order by StreamBatch.
type BatchResult struct {
	Index   int   // position of Seed in the input slice
	Seed    int64 //
	Outcome *Outcome
	Err     error
}

// StreamBatch sweeps prog over seeds with WithParallelism workers and
// streams per-seed results as they complete (arbitrary order; use
// Index to reassemble). The channel closes when the sweep is done.
// Configuration errors surface on the first result.
//
// The channel's buffer holds the whole batch, so abandoning it early
// (e.g. breaking at the first racy seed) leaks no goroutines — but
// the remaining seeds still run to completion in the background; size
// the seed slice to the work actually wanted.
func (r *Runner) StreamBatch(prog func(*sched.G), seeds []int64) <-chan BatchResult {
	workers := r.parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	ch := make(chan BatchResult, len(seeds))
	if len(seeds) == 0 {
		close(ch)
		return ch
	}
	if err := r.validate(); err != nil {
		ch <- BatchResult{Index: 0, Seed: seeds[0], Err: err} // buffered; cannot block
		close(ch)
		return ch
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker owns one recycled detection state: the
			// detector is Reset in place between seeds (when it
			// supports it), so the sweep's shadow memory, clocks, and
			// trace buffer are allocated once per worker, not once
			// per seed.
			wk, err := r.NewWorker()
			if err != nil {
				// validate() ran before the workers started, so this
				// is unreachable short of a racing re-registration.
				wk = nil
			}
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(seeds) {
					return
				}
				var out *Outcome
				var runErr error
				if wk != nil {
					out, runErr = wk.RunSeed(prog, seeds[i])
				} else {
					out, runErr = r.RunSeed(prog, seeds[i])
				}
				ch <- BatchResult{Index: i, Seed: seeds[i], Outcome: out, Err: runErr}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// RunBatch sweeps prog over seeds and returns the outcomes in seed
// order. Outcomes are deterministic per seed, so the result does not
// depend on the parallelism level.
func (r *Runner) RunBatch(prog func(*sched.G), seeds []int64) ([]*Outcome, error) {
	outs := make([]*Outcome, len(seeds))
	var firstErr error
	for br := range r.StreamBatch(prog, seeds) {
		if br.Err != nil {
			if firstErr == nil {
				firstErr = br.Err
			}
			continue
		}
		outs[br.Index] = br.Outcome
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// DetectionProbability sweeps runs sequential seeds from the Runner's
// base seed and returns the fraction of runs in which at least one
// race manifested — the flakiness measure behind the paper's §3.2.1
// argument that PR-time (CI) dynamic race detection is a misfit. The
// sweep honors WithParallelism.
func (r *Runner) DetectionProbability(prog func(*sched.G), runs int) (float64, error) {
	if runs <= 0 {
		runs = 1
	}
	hits := 0
	var firstErr error
	for br := range r.StreamBatch(prog, Seeds(r.seed, runs)) {
		if br.Err != nil {
			if firstErr == nil {
				firstErr = br.Err
			}
			continue
		}
		if br.Outcome.HasRace() {
			hits++
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(hits) / float64(runs), nil
}

// Seeds returns the n sequential seeds base, base+1, ..., the standard
// shape of a multi-seed sweep.
func Seeds(base int64, n int) []int64 {
	if n < 0 {
		n = 0
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
