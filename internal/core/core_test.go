package core

import (
	"testing"

	"gorace/internal/patterns"
	"gorace/internal/sched"
)

func racy() func(*sched.G) {
	p, ok := patterns.ByID("capture-err")
	if !ok {
		panic("pattern missing")
	}
	return p.Racy
}

func fixed() func(*sched.G) {
	p, _ := patterns.ByID("capture-err")
	return p.Fixed
}

func TestDetectDefaults(t *testing.T) {
	out, err := Detect(racy(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Detector != "fasttrack-hb" || out.Strategy != "random" {
		t.Fatalf("defaults = %s / %s", out.Detector, out.Strategy)
	}
	if out.Trace != nil {
		t.Fatal("trace recorded without Record")
	}
}

func TestDetectAllDetectors(t *testing.T) {
	for _, det := range []string{"fasttrack", "epoch", "djit", "eraser", "hybrid", "none"} {
		det := det
		t.Run(det, func(t *testing.T) {
			out, err := Detect(racy(), Config{Detector: det, Seed: 0})
			if err != nil {
				t.Fatal(err)
			}
			if out.Result == nil {
				t.Fatal("no run result")
			}
			if det == "none" && out.HasRace() {
				t.Fatal("the none detector detected something")
			}
		})
	}
}

func TestDetectAllStrategies(t *testing.T) {
	for _, st := range []string{"random", "roundrobin", "pct", "delay"} {
		st := st
		t.Run(st, func(t *testing.T) {
			if _, err := Detect(fixed(), Config{Strategy: st, Seed: 1}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDetectUnknownNames(t *testing.T) {
	if _, err := Detect(racy(), Config{Detector: "magic"}); err == nil {
		t.Fatal("unknown detector accepted")
	}
	if _, err := Detect(racy(), Config{Strategy: "magic"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestDetectRecordsTrace(t *testing.T) {
	out, err := Detect(racy(), Config{Record: true, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || len(out.Trace.Events) == 0 {
		t.Fatal("trace not recorded")
	}
}

func TestDetectRacyEventuallyFlags(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		out, err := Detect(racy(), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		found = out.HasRace()
	}
	if !found {
		t.Fatal("racy program never flagged")
	}
}

func TestDetectHybridSeparatesCandidates(t *testing.T) {
	// The fixed variant synchronizes via a channel: the HB detector
	// stays silent, but the lockset detector may surface candidates.
	out, err := Detect(fixed(), Config{Detector: "hybrid", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Races) != 0 {
		t.Fatalf("fixed variant produced confirmed races:\n%s", out.Races[0])
	}
	// Candidates may or may not exist here; only check no overlap.
	seen := make(map[string]bool)
	for _, r := range out.Races {
		seen[r.Hash()] = true
	}
	for _, c := range out.Candidates {
		if seen[c.Hash()] {
			t.Fatal("candidate duplicates a confirmed race")
		}
	}
}

func TestDetectionProbability(t *testing.T) {
	p, err := DetectionProbability(racy(), Config{}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Fatalf("P = %f", p)
	}
	pf, err := DetectionProbability(fixed(), Config{}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if pf != 0 {
		t.Fatalf("fixed P = %f, want 0", pf)
	}
	// Zero runs defaults to one run, not a division by zero.
	if _, err := DetectionProbability(fixed(), Config{}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOutcome(t *testing.T) {
	a, _ := Detect(racy(), Config{Seed: 11})
	b, _ := Detect(racy(), Config{Seed: 11})
	if len(a.Races) != len(b.Races) {
		t.Fatalf("same seed, different race counts: %d vs %d", len(a.Races), len(b.Races))
	}
	for i := range a.Races {
		if a.Races[i].Hash() != b.Races[i].Hash() {
			t.Fatal("same seed, different reports")
		}
	}
}
