// Package core is the top-level facade of the library: it runs a
// modeled program under a chosen scheduling strategy with a chosen
// detector attached, and returns the run summary together with the
// race reports. Command-line tools, examples, and the deployment
// pipeline all drive detection through one entry point, the Runner;
// detectors and strategies come from the registries in
// internal/detector and internal/sched, so new algorithms plug in
// without touching this package.
package core

import (
	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

// Config selects the detector, strategy, and run limits.
//
// Deprecated: Config only exists for the Detect shim. New code should
// use NewRunner with functional options.
type Config struct {
	// Detector is a registered detector name (see detector.Names);
	// empty selects the default. "none" runs without detection, the
	// overhead baseline.
	Detector string
	// Strategy is a registered strategy name (see
	// sched.StrategyNames); empty selects the default.
	Strategy string
	// Seed drives the schedule; a fixed seed reproduces the run.
	Seed int64
	// MaxSteps bounds the execution (0 = scheduler default).
	MaxSteps int
	// Record keeps the full event trace for post-facto analysis.
	Record bool
}

// Outcome is the result of one detection run.
type Outcome struct {
	Result     *sched.Result
	Races      []report.Race // race reports, deterministic order
	Candidates []report.Race // lockset-only findings (hybrid detector)
	// RaceCount is the conflicting-pair total of counting-only
	// detectors (epoch, djit); their Races are synthesized one per
	// racy address, so RaceCount may exceed len(Races).
	RaceCount int
	Trace     *trace.Recorder // non-nil iff recording was requested
	Detector  string
	Strategy  string
	Seed      int64
	Stats     detector.Stats // the detector's work counters
}

// HasRace reports whether any race (or counting hit) was detected.
func (o *Outcome) HasRace() bool { return len(o.Races) > 0 || o.RaceCount > 0 }

// NewStrategy builds a scheduling strategy by name.
//
// Deprecated: use sched.NewStrategy; this forwarder predates the
// strategy registry.
func NewStrategy(name string) (sched.Strategy, error) {
	return sched.NewStrategy(name)
}

// Detect runs prog under cfg and collects race reports.
//
// Deprecated: Detect is a thin shim over the Runner. Use
// NewRunner(...).Run(prog).
func Detect(prog func(*sched.G), cfg Config) (*Outcome, error) {
	return NewRunner(
		WithDetector(cfg.Detector),
		WithStrategy(cfg.Strategy),
		WithSeed(cfg.Seed),
		WithMaxSteps(cfg.MaxSteps),
		WithRecord(cfg.Record),
	).Run(prog)
}

// DetectionProbability runs prog under runs different seeds and
// returns the fraction of runs in which at least one race manifested.
//
// Deprecated: use NewRunner(...).DetectionProbability, which also
// sweeps the seeds in parallel under WithParallelism.
func DetectionProbability(prog func(*sched.G), cfg Config, runs int) (float64, error) {
	return NewRunner(
		WithDetector(cfg.Detector),
		WithStrategy(cfg.Strategy),
		WithSeed(cfg.Seed),
		WithMaxSteps(cfg.MaxSteps),
		WithRecord(cfg.Record),
	).DetectionProbability(prog, runs)
}
