// Package core is the top-level facade of the library: it runs a
// modeled program under a chosen scheduling strategy with a chosen
// detector attached, and returns the run summary together with the
// race reports. Command-line tools, examples, and the deployment
// pipeline all drive detection through this package.
package core

import (
	"fmt"

	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

// Config selects the detector, strategy, and run limits.
type Config struct {
	// Detector is one of "fasttrack" (default), "epoch", "djit",
	// "eraser", "hybrid", or "none" (run without detection, the
	// overhead baseline).
	Detector string
	// Strategy is one of "random" (default), "roundrobin", "pct",
	// "delay".
	Strategy string
	// Seed drives the schedule; a fixed seed reproduces the run.
	Seed int64
	// MaxSteps bounds the execution (0 = scheduler default).
	MaxSteps int
	// Record keeps the full event trace for post-facto analysis.
	Record bool
}

// Outcome is the result of one detection run.
type Outcome struct {
	Result     *sched.Result
	Races      []report.Race   // precise (HB) reports, deterministic order
	Candidates []report.Race   // lockset-only findings (hybrid detector)
	RaceCount  int             // count for counting-only detectors
	Trace      *trace.Recorder // non-nil iff Config.Record
	Detector   string
	Strategy   string
}

// HasRace reports whether any race (or counting hit) was detected.
func (o *Outcome) HasRace() bool { return len(o.Races) > 0 || o.RaceCount > 0 }

// NewStrategy builds a scheduling strategy by name.
func NewStrategy(name string) (sched.Strategy, error) {
	switch name {
	case "", "random":
		return sched.NewRandom(), nil
	case "roundrobin":
		return sched.NewRoundRobin(), nil
	case "pct":
		return sched.NewPCT(3, 2000), nil
	case "delay":
		return sched.NewDelay(0.05, 8), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

// Detect runs prog under cfg and collects race reports.
func Detect(prog func(*sched.G), cfg Config) (*Outcome, error) {
	strat, err := NewStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Strategy: strat.Name()}

	var listeners []trace.Listener
	if cfg.Record {
		out.Trace = &trace.Recorder{}
		listeners = append(listeners, out.Trace)
	}

	var ft *detector.FastTrack
	var ep *detector.Epoch
	var dj *detector.DJIT
	var er *detector.Eraser
	var hy *detector.Hybrid
	switch cfg.Detector {
	case "", "fasttrack":
		ft = detector.NewFastTrack()
		listeners = append(listeners, ft)
		out.Detector = ft.Name()
	case "epoch":
		ep = detector.NewEpoch()
		listeners = append(listeners, ep)
		out.Detector = ep.Name()
	case "djit":
		dj = detector.NewDJIT()
		listeners = append(listeners, dj)
		out.Detector = dj.Name()
	case "eraser":
		er = detector.NewEraser()
		listeners = append(listeners, er)
		out.Detector = er.Name()
	case "hybrid":
		hy = detector.NewHybrid()
		listeners = append(listeners, hy)
		out.Detector = hy.Name()
	case "none":
		out.Detector = "none"
	default:
		return nil, fmt.Errorf("unknown detector %q", cfg.Detector)
	}

	out.Result = sched.Run(prog, sched.Options{
		Strategy:  strat,
		Seed:      cfg.Seed,
		MaxSteps:  cfg.MaxSteps,
		Listeners: listeners,
	})

	switch {
	case ft != nil:
		out.Races = ft.Races()
	case ep != nil:
		out.RaceCount = ep.RaceCount()
	case dj != nil:
		out.RaceCount = dj.RaceCount()
	case er != nil:
		out.Races = er.Races()
	case hy != nil:
		out.Races = hy.Races()
		out.Candidates = hy.Candidates()
	}
	report.SortRaces(out.Races)
	report.SortRaces(out.Candidates)
	return out, nil
}

// DetectionProbability runs prog under runs different seeds and
// returns the fraction of runs in which at least one race manifested —
// the flakiness measure behind the paper's §3.2.1 argument that
// PR-time (CI) dynamic race detection is a misfit.
func DetectionProbability(prog func(*sched.G), cfg Config, runs int) (float64, error) {
	if runs <= 0 {
		runs = 1
	}
	hits := 0
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		out, err := Detect(prog, c)
		if err != nil {
			return 0, err
		}
		if out.HasRace() {
			hits++
		}
	}
	return float64(hits) / float64(runs), nil
}
