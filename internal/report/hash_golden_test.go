package report

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gorace/internal/stack"
	"gorace/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the dedup-hash golden file")

// The golden file pins the §3.3.1 dedup hash for representative races.
// These hashes are *persistent identity*: the corpus store
// (internal/corpus) keys months of accumulated defect history by
// them, and the paper's suppress-while-open pipeline depends on a
// defect hashing identically night after night. A refactor that
// changes Hash() silently orphans every stored corpus — if this test
// fails without a deliberate, documented format migration, fix the
// refactor, not the golden file.

func ctx(frames ...stack.Frame) stack.Context { return stack.NewContext(frames...) }

func fr(fn, file string, line int) stack.Frame {
	return stack.Frame{Func: fn, File: file, Line: line}
}

// goldenRaces builds the pinned corpus of representative races. Keep
// appending; never mutate existing entries (that is the point).
func goldenRaces() []struct {
	name string
	race Race
} {
	shallow := Race{
		First: Access{
			G: 0, Op: trace.OpWrite, Addr: 7,
			Stack: ctx(fr("processJobs", "listing1.go", 1)),
		},
		Second: Access{
			G: 1, Op: trace.OpRead, Addr: 7,
			Stack: ctx(fr("processJobs", "listing1.go", 1), fr("processJobs.func1", "listing1.go", 3)),
		},
	}
	deep := Race{
		First: Access{
			G: 2, Op: trace.OpWrite, Addr: 41,
			Stack: ctx(
				fr("main", "main.go", 10),
				fr("(*Server).Start", "server.go", 88),
				fr("(*Server).Start.func2", "server.go", 92),
			),
		},
		Second: Access{
			G: 3, Op: trace.OpWrite, Addr: 41,
			Stack: ctx(
				fr("main", "main.go", 10),
				fr("(*Server).Stop", "server.go", 120),
			),
		},
	}
	oneEmpty := Race{
		First:  Access{G: 0, Op: trace.OpWrite, Addr: 1},
		Second: Access{G: 1, Op: trace.OpRead, Addr: 1, Stack: ctx(fr("worker", "w.go", 5))},
	}
	bothEmpty := Race{
		First:  Access{G: 0, Op: trace.OpWrite, Addr: 2},
		Second: Access{G: 1, Op: trace.OpWrite, Addr: 2},
	}
	identicalStacks := Race{
		First: Access{
			G: 4, Op: trace.OpWrite, Addr: 9,
			Stack: ctx(fr("TestThing", "thing_test.go", 31), fr("TestThing.func1", "thing_test.go", 35)),
		},
		Second: Access{
			G: 5, Op: trace.OpWrite, Addr: 9,
			Stack: ctx(fr("TestThing", "thing_test.go", 31), fr("TestThing.func1", "thing_test.go", 35)),
		},
	}
	return []struct {
		name string
		race Race
	}{
		{"shallow-read-write", shallow},
		{"deep-multi-file", deep},
		{"one-empty-stack", oneEmpty},
		{"both-empty-stacks", bothEmpty},
		{"identical-stacks", identicalStacks},
	}
}

func TestDedupHashGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "dedup_hashes.golden")
	var lines []string
	for _, g := range goldenRaces() {
		lines = append(lines, fmt.Sprintf("%s\t%s", g.name, g.race.Hash()))
	}
	got := strings.Join(lines, "\n") + "\n"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update after a deliberate format change): %v", err)
	}
	if got != string(want) {
		t.Errorf("dedup hashes drifted from golden file — this invalidates every"+
			" persisted corpus keyed by them.\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestDedupHashInvariants pins the two properties the hash promises:
// line-number independence (unrelated edits within a function keep
// the defect's identity) and access-order independence (the hash is
// the same whichever access the detector saw first).
func TestDedupHashInvariants(t *testing.T) {
	for _, g := range goldenRaces() {
		flipped := Race{First: g.race.Second, Second: g.race.First}
		if flipped.Hash() != g.race.Hash() {
			t.Errorf("%s: hash depends on access order", g.name)
		}
		relined := g.race
		relined.First.Stack = shiftLines(relined.First.Stack, 100)
		relined.Second.Stack = shiftLines(relined.Second.Stack, 7)
		if relined.Hash() != g.race.Hash() {
			t.Errorf("%s: hash depends on line numbers", g.name)
		}
		// Metadata outside the calling contexts must not affect
		// identity either: the same defect reported by another
		// detector, with different labels or lock annotations, files
		// against the same open defect.
		decorated := g.race
		decorated.Detector = "other-detector"
		decorated.Seq = 999
		decorated.First.Label = "renamed"
		decorated.First.Locks = []string{"mu"}
		decorated.Second.Atomic = !decorated.Second.Atomic
		if decorated.Hash() != g.race.Hash() {
			t.Errorf("%s: hash depends on non-context metadata", g.name)
		}
	}
}

// TestDedupHashDistinct guards against the golden corpus collapsing:
// distinct calling-context pairs must produce distinct hashes.
func TestDedupHashDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, g := range goldenRaces() {
		h := g.race.Hash()
		if prev, ok := seen[h]; ok {
			t.Errorf("%s and %s share hash %s", g.name, prev, h)
		}
		seen[h] = g.name
	}
}

func shiftLines(c stack.Context, by int) stack.Context {
	frames := append([]stack.Frame(nil), c.Frames()...)
	for i := range frames {
		frames[i].Line += by
	}
	return stack.NewContext(frames...)
}
