package report

import (
	"encoding/json"
	"io"

	"gorace/internal/stack"
)

// Wire formats for tooling integration: race reports as JSON, the
// shape a bug tracker ingestion endpoint (the paper's JIRA stage)
// would consume.

// wireAccess is the serialized form of Access.
type wireAccess struct {
	Goroutine     int32         `json:"goroutine"`
	GoroutineName string        `json:"goroutineName,omitempty"`
	Kind          string        `json:"kind"`
	Addr          uint64        `json:"addr"`
	Seq           uint64        `json:"seq,omitempty"`
	Stack         []stack.Frame `json:"stack"`
	Label         string        `json:"label,omitempty"`
	Atomic        bool          `json:"atomic,omitempty"`
	Locks         []string      `json:"locksHeld,omitempty"`
}

// wireRace is the serialized form of Race.
type wireRace struct {
	Hash     string     `json:"hash"`
	Variable string     `json:"variable,omitempty"`
	Detector string     `json:"detector,omitempty"`
	First    wireAccess `json:"first"`
	Second   wireAccess `json:"second"`
}

func toWireAccess(a Access) wireAccess {
	return wireAccess{
		Goroutine: int32(a.G), GoroutineName: a.GName, Kind: a.Kind(),
		Addr: uint64(a.Addr), Seq: a.Seq, Stack: a.Stack.Frames(),
		Label: a.Label, Atomic: a.Atomic, Locks: a.Locks,
	}
}

// MarshalJSON implements json.Marshaler for Race.
func (r Race) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireRace{
		Hash:     r.Hash(),
		Variable: r.Var(),
		Detector: r.Detector,
		First:    toWireAccess(r.First),
		Second:   toWireAccess(r.Second),
	})
}

// WriteJSON emits races as JSON Lines, one report per line.
func WriteJSON(w io.Writer, races []Race) error {
	enc := json.NewEncoder(w)
	for _, r := range races {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
