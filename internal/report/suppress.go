package report

import (
	"bufio"
	"fmt"
	"strings"
)

// SuppressionList mirrors ThreadSanitizer's suppression files: each
// rule names a function (substring match against either call chain),
// and reports matching any rule are dropped. Large deployments need
// this valve for races in third-party code that cannot be fixed
// locally — part of making the §3.3 pipeline livable.
type SuppressionList struct {
	rules []suppression
}

type suppression struct {
	kind    string // "race" (reserved for future kinds)
	pattern string
}

// ParseSuppressions reads rules in TSan's format, one per line:
//
//	race:FunctionNameSubstring
//
// Blank lines and #-comments are ignored. Unknown kinds are errors.
func ParseSuppressions(text string) (*SuppressionList, error) {
	sl := &SuppressionList{}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, pattern, ok := strings.Cut(line, ":")
		if !ok || pattern == "" {
			return nil, fmt.Errorf("suppressions: line %d: want kind:pattern, got %q", lineNo, line)
		}
		if kind != "race" {
			return nil, fmt.Errorf("suppressions: line %d: unknown kind %q", lineNo, kind)
		}
		sl.rules = append(sl.rules, suppression{kind: kind, pattern: pattern})
	}
	return sl, sc.Err()
}

// Len returns the number of rules.
func (sl *SuppressionList) Len() int { return len(sl.rules) }

// Matches reports whether any rule matches either calling context.
func (sl *SuppressionList) Matches(r Race) bool {
	for _, rule := range sl.rules {
		if stackMatches(r.First, rule.pattern) || stackMatches(r.Second, rule.pattern) {
			return true
		}
	}
	return false
}

func stackMatches(a Access, pattern string) bool {
	for _, f := range a.Stack.Frames() {
		if strings.Contains(f.Func, pattern) {
			return true
		}
	}
	return false
}

// Apply returns the races not matched by the list, and the count
// suppressed.
func (sl *SuppressionList) Apply(races []Race) (kept []Race, suppressed int) {
	for _, r := range races {
		if sl.Matches(r) {
			suppressed++
			continue
		}
		kept = append(kept, r)
	}
	return kept, suppressed
}
