package report

import (
	"testing"

	"gorace/internal/trace"
)

func TestParseSuppressions(t *testing.T) {
	sl, err := ParseSuppressions(`
# third-party noise
race:vendorlib.Process

race:legacyCache
`)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Len() != 2 {
		t.Fatalf("rules = %d", sl.Len())
	}
}

func TestParseSuppressionsErrors(t *testing.T) {
	if _, err := ParseSuppressions("race:"); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := ParseSuppressions("deadlock:foo"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseSuppressions("no-colon-here"); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestSuppressionMatching(t *testing.T) {
	sl, _ := ParseSuppressions("race:vendorlib")
	vendored := Race{
		First:  mkAccess(trace.OpWrite, "vendorlib.Process", 1),
		Second: mkAccess(trace.OpRead, "ourCode", 2),
	}
	ours := Race{
		First:  mkAccess(trace.OpWrite, "ourCode", 1),
		Second: mkAccess(trace.OpRead, "moreOfOurs", 2),
	}
	if !sl.Matches(vendored) {
		t.Error("vendored race not matched")
	}
	if sl.Matches(ours) {
		t.Error("our race wrongly matched")
	}
	kept, suppressed := sl.Apply([]Race{vendored, ours, vendored})
	if suppressed != 2 || len(kept) != 1 {
		t.Fatalf("kept %d, suppressed %d", len(kept), suppressed)
	}
}

func TestSuppressionMatchesEitherStack(t *testing.T) {
	sl, _ := ParseSuppressions("race:deepHelper")
	r := Race{
		First:  mkAccess(trace.OpWrite, "plain", 1),
		Second: mkAccess(trace.OpRead, "deepHelper", 2),
	}
	if !sl.Matches(r) {
		t.Error("second-stack match missed")
	}
}

func TestEmptyListKeepsEverything(t *testing.T) {
	sl, _ := ParseSuppressions("")
	kept, suppressed := sl.Apply([]Race{{First: mkAccess(trace.OpWrite, "a", 1)}})
	if suppressed != 0 || len(kept) != 1 {
		t.Fatal("empty list dropped reports")
	}
}
