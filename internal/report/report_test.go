package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"gorace/internal/stack"
	"gorace/internal/trace"
)

func mkAccess(op trace.Op, fn string, line int) Access {
	return Access{
		G: 1, GName: "worker", Op: op, Addr: 7,
		Stack: stack.NewContext(
			stack.Frame{Func: "main", File: "m.go", Line: 1},
			stack.Frame{Func: fn, File: "m.go", Line: line},
		),
		Label: "x",
	}
}

func TestHashIgnoresLineNumbers(t *testing.T) {
	// §3.3.1 requirement (a): unrelated source edits that shift line
	// numbers must not change the hash.
	r1 := Race{First: mkAccess(trace.OpWrite, "P", 10), Second: mkAccess(trace.OpRead, "Q", 20)}
	r2 := Race{First: mkAccess(trace.OpWrite, "P", 99), Second: mkAccess(trace.OpRead, "Q", 1)}
	if r1.Hash() != r2.Hash() {
		t.Fatal("hash changed with line numbers")
	}
}

func TestHashOrderInsensitive(t *testing.T) {
	// §3.3.1 requirement (b): flipping which access was seen first
	// must not change the hash.
	a := mkAccess(trace.OpWrite, "P", 1)
	b := mkAccess(trace.OpRead, "Q", 2)
	r1 := Race{First: a, Second: b}
	r2 := Race{First: b, Second: a}
	if r1.Hash() != r2.Hash() {
		t.Fatal("hash depends on access order")
	}
}

func TestHashDistinguishesDifferentCallChains(t *testing.T) {
	r1 := Race{First: mkAccess(trace.OpWrite, "P", 1), Second: mkAccess(trace.OpRead, "Q", 2)}
	r2 := Race{First: mkAccess(trace.OpWrite, "P", 1), Second: mkAccess(trace.OpRead, "R", 2)}
	if r1.Hash() == r2.Hash() {
		t.Fatal("distinct call chains collided")
	}
}

func TestHashSuppressionLimitation(t *testing.T) {
	// The paper notes the flip side: races sharing both call chains
	// but differing only in line numbers hash identically and are
	// suppressed while one is open. Encode that as a regression test.
	r1 := Race{First: mkAccess(trace.OpWrite, "P", 5), Second: mkAccess(trace.OpRead, "Q", 6)}
	r2 := Race{First: mkAccess(trace.OpWrite, "P", 7), Second: mkAccess(trace.OpRead, "Q", 8)}
	if r1.Hash() != r2.Hash() {
		t.Fatal("same-chain different-line races should share a hash (by design)")
	}
}

func TestDeduperSuppressWhileOpenRefileAfterResolve(t *testing.T) {
	d := NewDeduper()
	r := Race{First: mkAccess(trace.OpWrite, "P", 1), Second: mkAccess(trace.OpRead, "Q", 2)}
	if !d.Add(r) {
		t.Fatal("first occurrence should file")
	}
	if d.Add(r) {
		t.Fatal("duplicate of open defect should be suppressed")
	}
	d.Resolve(r.Hash())
	if !d.Add(r) {
		t.Fatal("after resolution, the same race should file a fresh defect")
	}
	total, unique, open := d.Stats()
	if total != 3 || unique != 2 || open != 1 {
		t.Fatalf("stats = %d/%d/%d", total, unique, open)
	}
}

func TestAccessKindRendering(t *testing.T) {
	cases := map[trace.Op]string{
		trace.OpRead:        "Read",
		trace.OpWrite:       "Write",
		trace.OpAtomicLoad:  "Atomic read",
		trace.OpAtomicStore: "Atomic write",
		trace.OpAtomicRMW:   "Atomic write",
	}
	for op, want := range cases {
		if got := (Access{Op: op}).Kind(); got != want {
			t.Errorf("Kind(%v) = %q, want %q", op, got, want)
		}
	}
}

func TestStringRendersTSanStyle(t *testing.T) {
	r := Race{
		First:    mkAccess(trace.OpWrite, "P", 1),
		Second:   mkAccess(trace.OpRead, "Q", 2),
		Detector: "fasttrack-hb",
	}
	s := r.String()
	for _, want := range []string{"WARNING: DATA RACE", "Read at", "Previous write", "P m.go:1", "Q m.go:2"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestStringIncludesHeldLocks(t *testing.T) {
	a := mkAccess(trace.OpWrite, "P", 1)
	a.Locks = []string{"mu"}
	r := Race{First: a, Second: mkAccess(trace.OpRead, "Q", 2), Detector: "d"}
	if !strings.Contains(r.String(), "locks held: mu") {
		t.Error("held locks not rendered")
	}
}

func TestSortRacesDeterministic(t *testing.T) {
	rs := []Race{
		{First: mkAccess(trace.OpWrite, "Z", 1), Second: mkAccess(trace.OpRead, "Y", 2), Seq: 5},
		{First: mkAccess(trace.OpWrite, "A", 1), Second: mkAccess(trace.OpRead, "B", 2), Seq: 9},
		{First: mkAccess(trace.OpWrite, "A", 3), Second: mkAccess(trace.OpRead, "B", 4), Seq: 2},
	}
	SortRaces(rs)
	if rs[0].Hash() > rs[1].Hash() || rs[1].Hash() > rs[2].Hash() {
		t.Fatal("not sorted by hash")
	}
	// Equal hashes (entries 2 and 3 share chains) must order by Seq.
	for i := 0; i < len(rs)-1; i++ {
		if rs[i].Hash() == rs[i+1].Hash() && rs[i].Seq > rs[i+1].Seq {
			t.Fatal("equal-hash races not ordered by seq")
		}
	}
}

func TestUniqueByHash(t *testing.T) {
	rs := []Race{
		{First: mkAccess(trace.OpWrite, "P", 1), Second: mkAccess(trace.OpRead, "Q", 2), Seq: 1},
		{First: mkAccess(trace.OpWrite, "P", 9), Second: mkAccess(trace.OpRead, "Q", 8), Seq: 2},
		{First: mkAccess(trace.OpWrite, "X", 1), Second: mkAccess(trace.OpRead, "Y", 2), Seq: 3},
	}
	u := UniqueByHash(rs)
	if len(u) != 2 {
		t.Fatalf("unique = %d, want 2", len(u))
	}
}

func TestVarLabelFallback(t *testing.T) {
	r := Race{First: Access{Label: "fallback"}, Second: Access{}}
	if r.Var() != "fallback" {
		t.Fatalf("Var = %q", r.Var())
	}
	r.Second.Label = "primary"
	if r.Var() != "primary" {
		t.Fatalf("Var = %q", r.Var())
	}
}

// Property: the hash is invariant under line-number perturbation and
// access swap, for arbitrary function names.
func TestHashInvarianceProperty(t *testing.T) {
	f := func(fn1, fn2 string, l1, l2, l3, l4 uint8) bool {
		if fn1 == "" || fn2 == "" {
			return true
		}
		mk := func(fn string, line int) Access {
			return Access{Stack: stack.NewContext(stack.Frame{Func: fn, File: "f.go", Line: line})}
		}
		base := Race{First: mk(fn1, int(l1)), Second: mk(fn2, int(l2))}
		perturbed := Race{First: mk(fn2, int(l3)), Second: mk(fn1, int(l4))}
		return base.Hash() == perturbed.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDedupHash(b *testing.B) {
	r := Race{First: mkAccess(trace.OpWrite, "P", 1), Second: mkAccess(trace.OpRead, "Q", 2)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Hash()
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := Race{
		First:    mkAccess(trace.OpWrite, "P", 1),
		Second:   mkAccess(trace.OpRead, "Q", 2),
		Detector: "fasttrack-hb",
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Race{r, r}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["hash"] != r.Hash() {
		t.Errorf("hash = %v", decoded["hash"])
	}
	first, ok := decoded["first"].(map[string]any)
	if !ok || first["kind"] != "Write" {
		t.Errorf("first access = %v", decoded["first"])
	}
	stackList, ok := first["stack"].([]any)
	if !ok || len(stackList) != 2 {
		t.Errorf("stack = %v", first["stack"])
	}
}
