// Package report models data race reports and the de-duplication
// scheme of §3.3.1.
//
// A detected race report contains the conflicting memory address, the
// two calling contexts of the conflicting accesses, and the access
// types. The dedup hash (a) ignores source line numbers in both call
// chains, so unrelated edits within a function do not produce duplicate
// reports, and (b) orders the two call chains lexicographically, so a
// report is identical whichever access the detector happened to see
// first.
package report

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"gorace/internal/stack"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// Access is one side of a race: who touched what, how, from where.
type Access struct {
	G      vclock.TID
	GName  string
	Op     trace.Op
	Addr   trace.Addr
	Seq    uint64 // event sequence number of this access
	Stack  stack.Context
	Label  string   // source-level label, e.g. "errMap(internal)"
	Atomic bool     // access used sync/atomic
	Locks  []string // names of locks held at the access (diagnostic)
}

// Kind renders the access type like Go's race detector ("Read",
// "Write", "Atomic write", ...).
func (a Access) Kind() string {
	switch a.Op {
	case trace.OpRead:
		return "Read"
	case trace.OpWrite:
		return "Write"
	case trace.OpAtomicLoad:
		return "Atomic read"
	case trace.OpAtomicStore, trace.OpAtomicRMW:
		return "Atomic write"
	default:
		return a.Op.String()
	}
}

// Race is a detected data race: two conflicting accesses to the same
// address with no happens-before ordering (or, for the lockset
// detector, no common lock).
type Race struct {
	First    Access // the earlier access in the analyzed execution
	Second   Access // the access whose check fired
	Detector string // which detector produced the report
	Seq      uint64 // event sequence number of the detection
}

// Var returns the best available variable label for the race.
func (r Race) Var() string {
	if r.Second.Label != "" {
		return r.Second.Label
	}
	return r.First.Label
}

// Hash implements the §3.3.1 dedup hash: line numbers are dropped from
// both calling contexts and the two contexts are ordered
// lexicographically before hashing, making the hash stable across
// unrelated source edits and across access-order flips.
func (r Race) Hash() string {
	k1, k2 := r.First.Stack.Key(), r.Second.Stack.Key()
	if k2 < k1 {
		k1, k2 = k2, k1
	}
	sum := sha256.Sum256([]byte(k1 + "\x00" + k2))
	return hex.EncodeToString(sum[:8])
}

// String renders the race in the style of Go's race detector output.
func (r Race) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WARNING: DATA RACE (%s)\n", r.Detector)
	fmt.Fprintf(&b, "%s at a%d (%s) by goroutine g%d (%s):\n%s",
		r.Second.Kind(), r.Second.Addr, r.Var(), r.Second.G, r.Second.GName, r.Second.Stack)
	if len(r.Second.Locks) > 0 {
		fmt.Fprintf(&b, "  [locks held: %s]\n", strings.Join(r.Second.Locks, ", "))
	}
	fmt.Fprintf(&b, "Previous %s at a%d by goroutine g%d (%s):\n%s",
		strings.ToLower(r.First.Kind()), r.First.Addr, r.First.G, r.First.GName, r.First.Stack)
	if len(r.First.Locks) > 0 {
		fmt.Fprintf(&b, "  [locks held: %s]\n", strings.Join(r.First.Locks, ", "))
	}
	return b.String()
}

// Deduper suppresses duplicate reports by hash, mirroring the paper's
// rule: a defect is suppressed iff an *active* defect with the same
// hash is already open; once that defect is fixed (Resolve), the next
// occurrence files again.
type Deduper struct {
	open   map[string]int // hash -> occurrences while open
	total  int
	unique int
}

// NewDeduper returns an empty deduper.
func NewDeduper() *Deduper {
	return &Deduper{open: make(map[string]int)}
}

// Add offers a race; it returns true if the race is new (no active
// defect with the same hash) and should be filed.
func (d *Deduper) Add(r Race) bool {
	d.total++
	h := r.Hash()
	if _, ok := d.open[h]; ok {
		d.open[h]++
		return false
	}
	d.open[h] = 1
	d.unique++
	return true
}

// Resolve marks the defect with hash h fixed; a later identical race
// will be filed as a fresh defect.
func (d *Deduper) Resolve(h string) {
	delete(d.open, h)
}

// Stats reports (total offered, unique filed, currently open).
func (d *Deduper) Stats() (total, unique, open int) {
	return d.total, d.unique, len(d.open)
}

// SortRaces orders races deterministically (by hash, then sequence),
// so experiment output is stable across runs.
func SortRaces(rs []Race) {
	sort.Slice(rs, func(i, j int) bool {
		hi, hj := rs[i].Hash(), rs[j].Hash()
		if hi != hj {
			return hi < hj
		}
		return rs[i].Seq < rs[j].Seq
	})
}

// UniqueByHash returns the first representative of each hash, in
// deterministic order.
func UniqueByHash(rs []Race) []Race {
	seen := make(map[string]bool)
	var out []Race
	sorted := make([]Race, len(rs))
	copy(sorted, rs)
	SortRaces(sorted)
	for _, r := range sorted {
		h := r.Hash()
		if !seen[h] {
			seen[h] = true
			out = append(out, r)
		}
	}
	return out
}
