package stack

import (
	"strconv"
	"strings"
)

// Depot interns calling contexts: structurally identical frame lists
// resolve to one shared Context value, however many events, reports,
// or decoded traces reference them. This is what keeps a retained race
// report from pinning per-event stack copies — a days-long stream
// re-observes the same few thousand distinct contexts millions of
// times, and the depot stores each exactly once (the shape of
// racedetector's stackdepot, §3.3).
//
// A Depot is not safe for concurrent use; each decoder or ingest
// stream owns its own.
type Depot struct {
	m map[string]Context
	// keyBuf is the reused scratch buffer for key construction, so a
	// depot hit allocates nothing beyond the map probe.
	keyBuf strings.Builder
}

// NewDepot returns an empty depot.
func NewDepot() *Depot {
	return &Depot{m: make(map[string]Context)}
}

// Intern returns the canonical Context for frames, copying them into a
// new Context only on first sight. The empty frame list interns to the
// zero Context.
func (d *Depot) Intern(frames []Frame) Context {
	if len(frames) == 0 {
		return Context{}
	}
	d.keyBuf.Reset()
	for _, f := range frames {
		d.keyBuf.WriteString(f.Func)
		d.keyBuf.WriteByte(0)
		d.keyBuf.WriteString(f.File)
		d.keyBuf.WriteByte(0)
		d.keyBuf.WriteString(strconv.Itoa(f.Line))
		d.keyBuf.WriteByte(0)
	}
	key := d.keyBuf.String()
	if c, ok := d.m[key]; ok {
		return c
	}
	c := NewContext(frames...)
	d.m[key] = c
	return c
}

// InternContext interns an existing Context's frames, returning the
// canonical shared value.
func (d *Depot) InternContext(c Context) Context {
	return d.Intern(c.Frames())
}

// Size returns the number of distinct contexts interned so far.
func (d *Depot) Size() int { return len(d.m) }
