package stack

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPushPopDepth(t *testing.T) {
	s := NewStack()
	if s.Depth() != 0 {
		t.Fatal("new stack not empty")
	}
	s.Push("main", "main.go", 1)
	s.Push("worker", "main.go", 10)
	if s.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", s.Depth())
	}
	s.Pop()
	if s.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", s.Depth())
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty stack did not panic")
		}
	}()
	NewStack().Pop()
}

func TestCaptureSnapshotIsImmutable(t *testing.T) {
	s := NewStack()
	s.Push("a", "f.go", 1)
	c := s.Capture()
	s.Push("b", "f.go", 2)
	s.SetLine(3)
	if c.Depth() != 1 || c.Leaf().Func != "a" {
		t.Fatalf("earlier capture changed: %v", c.Frames())
	}
}

func TestCaptureCaching(t *testing.T) {
	s := NewStack()
	s.Push("a", "f.go", 1)
	c1 := s.Capture()
	c2 := s.Capture()
	if &c1.frames[0] != &c2.frames[0] {
		t.Error("repeated capture without mutation should reuse the snapshot")
	}
	s.SetLine(2)
	c3 := s.Capture()
	if c3.Leaf().Line != 2 {
		t.Errorf("capture after SetLine has line %d", c3.Leaf().Line)
	}
	if c1.Leaf().Line != 1 {
		t.Error("old capture mutated by SetLine")
	}
}

func TestSetLineOnEmptyIsNoop(t *testing.T) {
	s := NewStack()
	s.SetLine(42) // must not panic
	if s.Depth() != 0 {
		t.Fatal("SetLine changed depth")
	}
}

func TestRootAndLeaf(t *testing.T) {
	c := NewContext(
		Frame{Func: "root", File: "r.go", Line: 1},
		Frame{Func: "mid", File: "m.go", Line: 2},
		Frame{Func: "leaf", File: "l.go", Line: 3},
	)
	if c.Root().Func != "root" || c.Leaf().Func != "leaf" {
		t.Fatalf("root/leaf = %v / %v", c.Root(), c.Leaf())
	}
	var empty Context
	if empty.Root() != (Frame{}) || empty.Leaf() != (Frame{}) {
		t.Fatal("empty context root/leaf should be zero frames")
	}
}

func TestKeyIgnoresLineNumbers(t *testing.T) {
	a := NewContext(Frame{Func: "P", Line: 10}, Frame{Func: "Q", Line: 20})
	b := NewContext(Frame{Func: "P", Line: 99}, Frame{Func: "Q", Line: 7})
	if a.Key() != b.Key() {
		t.Fatalf("Key differs on line-number change: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != "P->Q" {
		t.Fatalf("Key = %q", a.Key())
	}
}

func TestStringLeafFirst(t *testing.T) {
	c := NewContext(Frame{Func: "outer", File: "o.go", Line: 1}, Frame{Func: "inner", File: "i.go", Line: 2})
	s := c.String()
	if !strings.Contains(s, "inner") || !strings.Contains(s, "outer") {
		t.Fatalf("String = %q", s)
	}
	if strings.Index(s, "inner") > strings.Index(s, "outer") {
		t.Error("String should print the leaf frame first")
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{Func: "Foo", File: "foo.go", Line: 3}
	if f.String() != "Foo foo.go:3" {
		t.Fatalf("Frame.String = %q", f.String())
	}
	if (Frame{Func: "Bare"}).String() != "Bare" {
		t.Fatal("file-less frame should render the name only")
	}
}

// Property: Capture after a sequence of pushes preserves order and depth.
func TestCaptureReflectsPushesProperty(t *testing.T) {
	f := func(names []string) bool {
		s := NewStack()
		for i, n := range names {
			s.Push(n, "f.go", i)
		}
		c := s.Capture()
		if c.Depth() != len(names) {
			return false
		}
		for i, fr := range c.Frames() {
			if fr.Func != names[i] || fr.Line != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCaptureCached(b *testing.B) {
	s := NewStack()
	s.Push("a", "f.go", 1)
	s.Push("b", "f.go", 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Capture()
	}
}

func BenchmarkCaptureAfterSetLine(b *testing.B) {
	s := NewStack()
	s.Push("a", "f.go", 1)
	s.Push("b", "f.go", 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SetLine(i & 7)
		_ = s.Capture()
	}
}
