// Package stack models calling contexts for the modeled runtime.
//
// A race report contains "two call chains (aka calling contexts or stack
// traces) of the two conflicting accesses" (§3.3). Corpus programs
// maintain an explicit frame stack per modeled goroutine; every event
// captures the current context. Contexts are immutable once captured.
//
// Capture is the hot path of instrumentation, so the per-goroutine
// Stack caches its last captured Context and reuses it until a frame is
// pushed or popped (the common case: many events per call frame).
package stack

import (
	"fmt"
	"strings"
)

// Frame is one entry of a modeled call stack.
type Frame struct {
	Func string // fully qualified function name, e.g. "processOrders.func1"
	File string // pseudo file name, e.g. "listing6.go"
	Line int    // line number at the call site or access site
}

// String renders the frame as "func file:line" (or just the
// function name for frames without a file).
func (f Frame) String() string {
	if f.File == "" {
		return f.Func
	}
	return fmt.Sprintf("%s %s:%d", f.Func, f.File, f.Line)
}

// Context is an immutable captured call chain, root first.
type Context struct {
	frames []Frame
}

// NewContext builds a context from root-first frames, copying the input.
func NewContext(frames ...Frame) Context {
	c := Context{frames: make([]Frame, len(frames))}
	copy(c.frames, frames)
	return c
}

// Frames returns the root-first frame list. Callers must not modify it.
func (c Context) Frames() []Frame { return c.frames }

// Depth returns the number of frames.
func (c Context) Depth() int { return len(c.frames) }

// Leaf returns the innermost frame (the access site), or a zero Frame.
func (c Context) Leaf() Frame {
	if len(c.frames) == 0 {
		return Frame{}
	}
	return c.frames[len(c.frames)-1]
}

// Root returns the outermost frame, or a zero Frame.
func (c Context) Root() Frame {
	if len(c.frames) == 0 {
		return Frame{}
	}
	return c.frames[0]
}

// FuncNames returns the root-first function names, without line numbers.
// This is the projection used by the §3.3.1 dedup hash.
func (c Context) FuncNames() []string {
	out := make([]string, len(c.frames))
	for i, f := range c.frames {
		out[i] = f.Func
	}
	return out
}

// Key renders the context as a single line-number-free string,
// "a()->b()->c()", suitable for hashing and lexicographic ordering.
func (c Context) Key() string {
	names := c.FuncNames()
	return strings.Join(names, "->")
}

// String renders the context leaf-first, one frame per line, in the
// style of Go's race detector output.
func (c Context) String() string {
	var b strings.Builder
	for i := len(c.frames) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "  %s\n", c.frames[i].String())
	}
	return b.String()
}

// Stack is the mutable per-goroutine frame stack.
type Stack struct {
	frames []Frame
	cached Context
	dirty  bool
}

// NewStack returns an empty stack.
func NewStack() *Stack { return &Stack{dirty: true} }

// Push enters a function frame.
func (s *Stack) Push(fn, file string, line int) {
	s.frames = append(s.frames, Frame{Func: fn, File: file, Line: line})
	s.dirty = true
}

// Pop leaves the innermost frame. Popping an empty stack is a modeling
// bug and panics.
func (s *Stack) Pop() {
	if len(s.frames) == 0 {
		panic("stack: Pop on empty stack")
	}
	s.frames = s.frames[:len(s.frames)-1]
	s.dirty = true
}

// SetLine updates the line number of the innermost frame, marking where
// within the current function the next event occurs.
func (s *Stack) SetLine(line int) {
	if len(s.frames) == 0 {
		return
	}
	if s.frames[len(s.frames)-1].Line != line {
		s.frames[len(s.frames)-1].Line = line
		s.dirty = true
	}
}

// Depth returns the current number of frames.
func (s *Stack) Depth() int { return len(s.frames) }

// Capture returns an immutable snapshot of the current stack. Snapshots
// are cached: repeated captures without intervening Push/Pop/SetLine
// return the same Context value without copying.
func (s *Stack) Capture() Context {
	if !s.dirty {
		return s.cached
	}
	s.cached = NewContext(s.frames...)
	s.dirty = false
	return s.cached
}
