package sched

import "gorace/internal/trace"

// Atomic models a sync/atomic int64 cell. Atomic operations both
// synchronize (acquire/release on the cell's sync object, as the Go
// memory model guarantees for sync/atomic since Go 1.19) and access
// memory (with the atomic flag set in the shadow cell).
//
// The PlainLoad/PlainStore methods model the §4.9.2 "partial atomics"
// bug: using an atomic write but a plain read (or vice versa) on the
// same variable. A plain access carries no acquire/release edge and no
// atomic flag, so it races with concurrent atomic accesses — exactly
// how ThreadSanitizer treats mixed atomic/plain accesses.
type Atomic struct {
	s    *Scheduler
	id   trace.ObjID
	addr trace.Addr
	name string
	val  int64
}

// NewAtomic allocates a modeled atomic cell.
func NewAtomic(g *G, name string) *Atomic {
	return &Atomic{s: g.s, id: g.s.objFor(g), addr: g.s.addrFor(g), name: name}
}

// Addr exposes the shadow cell, for tests and classifiers.
func (a *Atomic) Addr() trace.Addr { return a.addr }

// Name returns the diagnostic name.
func (a *Atomic) Name() string { return a.name }

// Load models atomic.LoadInt64.
func (a *Atomic) Load(g *G) int64 {
	g.point()
	a.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: a.id, Kind: trace.KindAtomic, Label: a.name})
	a.s.emit(g, trace.Event{Op: trace.OpAtomicLoad, Addr: a.addr, Label: a.name})
	return a.val
}

// Store models atomic.StoreInt64.
func (a *Atomic) Store(g *G, v int64) {
	g.point()
	a.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: a.id, Kind: trace.KindAtomic, Label: a.name})
	a.s.emit(g, trace.Event{Op: trace.OpAtomicStore, Addr: a.addr, Label: a.name})
	a.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: a.id, Kind: trace.KindAtomic, Label: a.name})
	a.val = v
}

// Add models atomic.AddInt64 and returns the new value.
func (a *Atomic) Add(g *G, delta int64) int64 {
	g.point()
	a.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: a.id, Kind: trace.KindAtomic, Label: a.name})
	a.s.emit(g, trace.Event{Op: trace.OpAtomicRMW, Addr: a.addr, Label: a.name})
	a.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: a.id, Kind: trace.KindAtomic, Label: a.name})
	a.val += delta
	return a.val
}

// CompareAndSwap models atomic.CompareAndSwapInt64: a read-modify-write
// access with the acquire/release edge of sync/atomic, whether or not
// the swap succeeds (the hardware operation touches the cell either
// way).
func (a *Atomic) CompareAndSwap(g *G, old, new int64) bool {
	g.point()
	a.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: a.id, Kind: trace.KindAtomic, Label: a.name})
	a.s.emit(g, trace.Event{Op: trace.OpAtomicRMW, Addr: a.addr, Label: a.name})
	a.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: a.id, Kind: trace.KindAtomic, Label: a.name})
	if a.val != old {
		return false
	}
	a.val = new
	return true
}

// PlainLoad models reading the variable without sync/atomic — the
// "forgot to use atomic on the read side" half of a partial-atomics bug.
func (a *Atomic) PlainLoad(g *G) int64 {
	g.point()
	a.s.emit(g, trace.Event{Op: trace.OpRead, Addr: a.addr, Label: a.name})
	return a.val
}

// PlainStore models writing the variable without sync/atomic.
func (a *Atomic) PlainStore(g *G, v int64) {
	g.point()
	a.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: a.addr, Label: a.name})
	a.val = v
}
