package sched

import "gorace/internal/trace"

// WaitGroup models sync.WaitGroup with the flexible (and race-prone)
// dynamic registration the paper's Observation 8 describes: Add may
// run at any time, so a Wait that executes before the workers' Add
// calls unblocks prematurely — Wait only acquires the completion
// clocks of Done calls that have already been released, leaving later
// writes unordered with the waiter's reads (Listing 10).
type WaitGroup struct {
	s     *Scheduler
	id    trace.ObjID
	name  string
	count int
}

// NewWaitGroup allocates a modeled WaitGroup.
func NewWaitGroup(g *G, name string) *WaitGroup {
	return &WaitGroup{s: g.s, id: g.s.objFor(g), name: name}
}

// Name returns the diagnostic name.
func (w *WaitGroup) Name() string { return w.name }

// Add registers delta additional participants.
func (w *WaitGroup) Add(g *G, delta int) {
	g.point()
	w.count += delta
	if w.count < 0 {
		w.s.fail(g, "negative WaitGroup %s counter", w.name)
		w.count = 0
	}
	if w.count == 0 {
		w.s.wakeAllBlocked()
	}
}

// Done marks one participant complete, releasing its clock into the
// group so Wait observes everything the participant did.
func (w *WaitGroup) Done(g *G) {
	g.point()
	w.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: w.id, Kind: trace.KindWG, Label: w.name})
	w.count--
	if w.count < 0 {
		w.s.fail(g, "negative WaitGroup %s counter", w.name)
		w.count = 0
	}
	if w.count == 0 {
		w.s.wakeAllBlocked()
	}
}

// Wait blocks until the counter is zero, then acquires the group's
// accumulated completion clock. If the counter is already zero —
// perhaps because Add was misplaced inside the goroutines — Wait
// returns immediately, having synchronized with nobody.
func (w *WaitGroup) Wait(g *G) {
	g.point()
	for w.count > 0 {
		g.block("waitgroup " + w.name)
	}
	w.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: w.id, Kind: trace.KindWG, Label: w.name})
}
