package sched

import (
	"testing"

	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// run executes main with a recorder attached and returns both.
func run(t *testing.T, opts Options, main func(*G)) (*Result, *trace.Recorder) {
	t.Helper()
	rec := &trace.Recorder{}
	opts.Listeners = append(opts.Listeners, rec)
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1 << 16
	}
	res := Run(main, opts)
	return res, rec
}

func TestEmptyProgram(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {})
	if res.Goroutines != 1 || res.Deadlocked() || len(res.Failures) != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestSpawnRunsChildren(t *testing.T) {
	hit := 0
	res, rec := run(t, Options{}, func(g *G) {
		for i := 0; i < 3; i++ {
			g.Go("child", func(g *G) { hit++ })
		}
	})
	if hit != 3 {
		t.Fatalf("children ran %d times, want 3", hit)
	}
	if res.Goroutines != 4 {
		t.Fatalf("goroutines = %d, want 4", res.Goroutines)
	}
	ops := rec.CountOps()
	if ops[trace.OpFork] != 3 {
		t.Fatalf("fork events = %d, want 3", ops[trace.OpFork])
	}
	if ops[trace.OpGoEnd] != 4 {
		t.Fatalf("go-end events = %d, want 4", ops[trace.OpGoEnd])
	}
}

func TestVarLoadStore(t *testing.T) {
	var got int
	_, rec := run(t, Options{}, func(g *G) {
		v := NewVarOf(g, "x", 10)
		v.Store(g, 42)
		got = v.Load(g)
	})
	if got != 42 {
		t.Fatalf("load = %d", got)
	}
	ops := rec.CountOps()
	if ops[trace.OpWrite] != 1 || ops[trace.OpRead] != 1 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	// Under every seed, the critical sections must not interleave.
	for seed := int64(0); seed < 20; seed++ {
		inside := 0
		maxInside := 0
		res, _ := run(t, Options{Strategy: NewRandom(), Seed: seed}, func(g *G) {
			mu := NewMutex(g, "mu")
			wg := NewWaitGroup(g, "wg")
			for i := 0; i < 3; i++ {
				wg.Add(g, 1)
				g.Go("worker", func(g *G) {
					mu.Lock(g)
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					g.Yield() // widen the window
					inside--
					mu.Unlock(g)
					wg.Done(g)
				})
			}
			wg.Wait(g)
		})
		if maxInside != 1 {
			t.Fatalf("seed %d: %d goroutines inside the critical section", seed, maxInside)
		}
		if res.Deadlocked() || len(res.Failures) > 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestMutexUnlockUnlockedFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		mu := NewMutex(g, "mu")
		mu.Unlock(g)
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestMutexCloneSharesNoState(t *testing.T) {
	// Listing 7: a by-value mutex copy gives no mutual exclusion.
	order := []int{}
	res, _ := run(t, Options{}, func(g *G) {
		mu := NewMutex(g, "mu")
		done := NewChan[int](g, "done", 2)
		g.Go("a", func(g *G) {
			m := mu.Clone(g)
			m.Lock(g)
			order = append(order, 1)
			g.Yield()
			order = append(order, 2)
			m.Unlock(g)
			done.Send(g, 1)
		})
		g.Go("b", func(g *G) {
			m := mu.Clone(g)
			m.Lock(g)
			order = append(order, 3)
			m.Unlock(g)
			done.Send(g, 1)
		})
		done.Recv(g)
		done.Recv(g)
	})
	if res.Deadlocked() {
		t.Fatalf("clones must not exclude each other: %+v", res.Leaked)
	}
}

func TestRWMutexReadersShareWritersExclude(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		readers, maxReaders := 0, 0
		writerWhileReader := false
		res, _ := run(t, Options{Strategy: NewRandom(), Seed: seed}, func(g *G) {
			mu := NewRWMutex(g, "rw")
			wg := NewWaitGroup(g, "wg")
			for i := 0; i < 3; i++ {
				wg.Add(g, 1)
				g.Go("reader", func(g *G) {
					mu.RLock(g)
					readers++
					if readers > maxReaders {
						maxReaders = readers
					}
					g.Yield()
					readers--
					mu.RUnlock(g)
					wg.Done(g)
				})
			}
			wg.Add(g, 1)
			g.Go("writer", func(g *G) {
				mu.Lock(g)
				if readers > 0 {
					writerWhileReader = true
				}
				g.Yield()
				mu.Unlock(g)
				wg.Done(g)
			})
			wg.Wait(g)
		})
		if writerWhileReader {
			t.Fatalf("seed %d: writer ran with readers inside", seed)
		}
		if res.Deadlocked() || len(res.Failures) > 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		_ = maxReaders
	}
}

func TestUnbufferedChannelTransfersValue(t *testing.T) {
	var got int
	res, _ := run(t, Options{}, func(g *G) {
		ch := NewChan[int](g, "ch", 0)
		g.Go("sender", func(g *G) { ch.Send(g, 99) })
		got, _ = ch.Recv(g)
	})
	if got != 99 || res.Deadlocked() {
		t.Fatalf("got %d, result %+v", got, res)
	}
}

func TestUnbufferedReceiverFirst(t *testing.T) {
	// Force the receiver to park before the sender runs.
	var got int
	res, _ := run(t, Options{Strategy: NewReplay([]int{0, 0, 0, 0})}, func(g *G) {
		ch := NewChan[int](g, "ch", 0)
		g.Go("sender", func(g *G) { ch.Send(g, 7) })
		got, _ = ch.Recv(g)
	})
	if got != 7 || res.Deadlocked() {
		t.Fatalf("got %d, result %+v", got, res)
	}
}

func TestBufferedChannelFIFOAndBackpressure(t *testing.T) {
	var got []int
	res, _ := run(t, Options{Strategy: NewRandom(), Seed: 3}, func(g *G) {
		ch := NewChan[int](g, "ch", 2)
		g.Go("producer", func(g *G) {
			for i := 1; i <= 5; i++ {
				ch.Send(g, i)
			}
			ch.Close(g)
		})
		for {
			v, ok := ch.Recv(g)
			if !ok {
				break
			}
			got = append(got, v)
		}
	})
	if len(got) != 5 {
		t.Fatalf("received %v", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("FIFO broken: %v", got)
		}
	}
	if res.Deadlocked() {
		t.Fatalf("%+v", res)
	}
}

func TestRecvFromClosedEmptyChannel(t *testing.T) {
	okSeen := true
	res, _ := run(t, Options{}, func(g *G) {
		ch := NewChan[int](g, "ch", 1)
		ch.Close(g)
		_, okSeen = ch.Recv(g)
	})
	if okSeen {
		t.Fatal("recv from closed empty channel returned ok=true")
	}
	if res.Deadlocked() || len(res.Failures) != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestSendOnClosedChannelFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		ch := NewChan[int](g, "ch", 1)
		ch.Close(g)
		ch.Send(g, 1)
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestCloseWakesParkedReceivers(t *testing.T) {
	oks := make([]bool, 2)
	res, _ := run(t, Options{Strategy: NewRandom(), Seed: 1}, func(g *G) {
		ch := NewChan[int](g, "ch", 0)
		wg := NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			i := i
			g.Go("rx", func(g *G) {
				_, oks[i] = ch.Recv(g)
				wg.Done(g)
			})
		}
		ch.Close(g)
		wg.Wait(g)
	})
	if oks[0] || oks[1] {
		t.Fatalf("oks = %v, want both false", oks)
	}
	if res.Deadlocked() {
		t.Fatalf("%+v", res)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Listing 9's forever-blocked goroutine, distilled: send with no
	// receiver ever coming.
	res, rec := run(t, Options{}, func(g *G) {
		ch := NewChan[int](g, "ch", 0)
		g.Go("leaker", func(g *G) { ch.Send(g, 1) })
	})
	if !res.Deadlocked() || len(res.Leaked) != 1 {
		t.Fatalf("leak not detected: %+v", res)
	}
	if res.Leaked[0].Name != "leaker" {
		t.Fatalf("leaked = %+v", res.Leaked)
	}
	if rec.CountOps()[trace.OpGoLeak] != 1 {
		t.Fatal("no OpGoLeak event")
	}
}

func TestStepBudget(t *testing.T) {
	res, _ := run(t, Options{MaxSteps: 50}, func(g *G) {
		v := NewVar[int](g, "x")
		for {
			v.Store(g, 1)
		}
	})
	if !res.BudgetExceeded {
		t.Fatal("budget not enforced")
	}
}

func TestWaitGroupWaitsForAll(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 0
		after := -1
		res, _ := run(t, Options{Strategy: NewRandom(), Seed: seed}, func(g *G) {
			wg := NewWaitGroup(g, "wg")
			for i := 0; i < 4; i++ {
				wg.Add(g, 1)
				g.Go("w", func(g *G) {
					g.Yield()
					n++
					wg.Done(g)
				})
			}
			wg.Wait(g)
			after = n
		})
		if after != 4 {
			t.Fatalf("seed %d: Wait returned with %d/4 done", seed, after)
		}
		if res.Deadlocked() {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestWaitGroupMisplacedAddUnblocksEarly(t *testing.T) {
	// Listing 10: Add inside the goroutine. Under round-robin the
	// parent reaches Wait before any child ran Add, so Wait must not
	// block at all.
	early := false
	run(t, Options{Strategy: NewReplay(nil)}, func(g *G) {
		wg := NewWaitGroup(g, "wg")
		done := NewVar[int](g, "done")
		g.Go("w", func(g *G) {
			wg.Add(g, 1)
			done.Store(g, 1)
			wg.Done(g)
		})
		wg.Wait(g) // counter is still 0: returns immediately
		if done.Load(g) == 0 {
			early = true
		}
	})
	if !early {
		t.Fatal("replay(first-runnable) should reach Wait before the child's Add")
	}
}

func TestPanicInGoroutineRecorded(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		g.Go("bad", func(g *G) { panic("boom") })
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestAtomicOps(t *testing.T) {
	var v1, v2 int64
	_, rec := run(t, Options{}, func(g *G) {
		a := NewAtomic(g, "ctr")
		a.Store(g, 5)
		a.Add(g, 2)
		v1 = a.Load(g)
		a.PlainStore(g, 9)
		v2 = a.PlainLoad(g)
	})
	if v1 != 7 || v2 != 9 {
		t.Fatalf("v1=%d v2=%d", v1, v2)
	}
	ops := rec.CountOps()
	if ops[trace.OpAtomicStore] != 1 || ops[trace.OpAtomicRMW] != 1 || ops[trace.OpAtomicLoad] != 1 {
		t.Fatalf("atomic ops = %v", ops)
	}
	if ops[trace.OpWrite] != 1 || ops[trace.OpRead] != 1 {
		t.Fatalf("plain ops = %v", ops)
	}
}

func TestMapOperations(t *testing.T) {
	var got string
	var ok1, ok2 bool
	var n int
	_, _ = run(t, Options{}, func(g *G) {
		m := NewMap[string, string](g, "m")
		m.Put(g, "a", "1")
		m.Put(g, "b", "2")
		got, ok1 = m.Get(g, "a")
		m.Delete(g, "a")
		_, ok2 = m.Get(g, "a")
		n = m.Len(g)
	})
	if got != "1" || !ok1 || ok2 || n != 1 {
		t.Fatalf("map semantics broken: %q %v %v %d", got, ok1, ok2, n)
	}
}

func TestSliceOperations(t *testing.T) {
	var ln int
	var v int
	res, _ := run(t, Options{}, func(g *G) {
		sl := NewSlice[int](g, "s", 2)
		sl.Set(g, 0, 10)
		sl.Set(g, 1, 20)
		sl.Append(g, 30)
		v = sl.Get(g, 2)
		ln = sl.Len(g)
	})
	if v != 30 || ln != 3 {
		t.Fatalf("v=%d len=%d", v, ln)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestSliceOutOfRangeFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		sl := NewSlice[int](g, "s", 1)
		sl.Get(g, 5)
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		runs := 0
		res, _ := run(t, Options{Strategy: NewRandom(), Seed: seed}, func(g *G) {
			once := NewOnce(g, "init")
			wg := NewWaitGroup(g, "wg")
			for i := 0; i < 3; i++ {
				wg.Add(g, 1)
				g.Go("w", func(g *G) {
					once.Do(g, func() { runs++ })
					wg.Done(g)
				})
			}
			wg.Wait(g)
		})
		if runs != 1 {
			t.Fatalf("seed %d: once ran %d times", seed, runs)
		}
		if res.Deadlocked() {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestSelectPrefersReadyArm(t *testing.T) {
	var picked int
	res, _ := run(t, Options{}, func(g *G) {
		a := NewChan[int](g, "a", 1)
		b := NewChan[int](g, "b", 1)
		b.Send(g, 5)
		picked = g.Select(
			OnRecv(a, nil),
			OnRecv(b, nil),
		)
	})
	if picked != 1 {
		t.Fatalf("picked arm %d, want 1", picked)
	}
	if res.Deadlocked() {
		t.Fatalf("%+v", res)
	}
}

func TestSelectDefault(t *testing.T) {
	var picked int
	run(t, Options{}, func(g *G) {
		a := NewChan[int](g, "a", 0)
		picked = g.Select(
			OnRecv(a, nil),
			Default(nil),
		)
	})
	if picked != 1 {
		t.Fatalf("picked arm %d, want default (1)", picked)
	}
}

func TestSelectBlocksUntilReady(t *testing.T) {
	var got int
	res, _ := run(t, Options{Strategy: NewRandom(), Seed: 7}, func(g *G) {
		ch := NewChan[int](g, "ch", 0)
		g.Go("tx", func(g *G) {
			g.Yield()
			ch.Send(g, 11)
		})
		g.Select(OnRecv(ch, func(v int, ok bool) { got = v }))
	})
	if got != 11 || res.Deadlocked() {
		t.Fatalf("got=%d %+v", got, res)
	}
}

func TestSelectSendArm(t *testing.T) {
	var received int
	res, _ := run(t, Options{Strategy: NewRandom(), Seed: 5}, func(g *G) {
		ch := NewChan[int](g, "ch", 1)
		done := NewChan[int](g, "done", 0)
		g.Go("rx", func(g *G) {
			v, _ := ch.Recv(g)
			received = v
			done.Send(g, 1)
		})
		g.Select(OnSend(ch, 42, nil))
		done.Recv(g)
	})
	if received != 42 || res.Deadlocked() {
		t.Fatalf("received=%d %+v", received, res)
	}
}

func TestSelectEmptyBlocksForever(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		g.Go("stuck", func(g *G) { g.Select() })
	})
	if !res.Deadlocked() {
		t.Fatal("select{} should leak the goroutine")
	}
}

func TestDeterminismSameSeedSameTrace(t *testing.T) {
	prog := func(g *G) {
		v := NewVar[int](g, "x")
		mu := NewMutex(g, "mu")
		wg := NewWaitGroup(g, "wg")
		for i := 0; i < 3; i++ {
			wg.Add(g, 1)
			g.Go("w", func(g *G) {
				mu.Lock(g)
				v.Store(g, v.Load(g)+1)
				mu.Unlock(g)
				wg.Done(g)
			})
		}
		wg.Wait(g)
	}
	sig := func(seed int64) []string {
		rec := &trace.Recorder{}
		Run(prog, Options{Strategy: NewRandom(), Seed: seed, Listeners: []trace.Listener{rec}, MaxSteps: 1 << 16})
		var out []string
		for _, ev := range rec.Events {
			out = append(out, ev.String())
		}
		return out
	}
	a, b := sig(42), sig(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
	c := sig(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("note: seeds 42 and 43 produced identical traces (possible but unusual)")
	}
}

func TestStacksAppearInEvents(t *testing.T) {
	_, rec := run(t, Options{}, func(g *G) {
		g.Call("main", "main.go", 1, func() {
			v := NewVar[int](g, "x")
			g.Line(3)
			v.Store(g, 1)
		})
	})
	for _, ev := range rec.Events {
		if ev.Op == trace.OpWrite {
			if ev.Stack.Leaf().Func != "main" || ev.Stack.Leaf().Line != 3 {
				t.Fatalf("stack = %v", ev.Stack.Frames())
			}
			return
		}
	}
	t.Fatal("no write event found")
}

func TestForkEventCarriesChildTID(t *testing.T) {
	_, rec := run(t, Options{}, func(g *G) {
		g.Go("c1", func(g *G) {})
	})
	for _, ev := range rec.Events {
		if ev.Op == trace.OpFork {
			if ev.Child != vclock.TID(1) {
				t.Fatalf("fork child = %d", ev.Child)
			}
			return
		}
	}
	t.Fatal("no fork event")
}

func TestUpdateIsTwoAccesses(t *testing.T) {
	_, rec := run(t, Options{}, func(g *G) {
		v := NewVarOf(g, "x", 1)
		v.Update(g, func(x int) int { return x * 2 })
	})
	ops := rec.CountOps()
	if ops[trace.OpRead] != 1 || ops[trace.OpWrite] != 1 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestStrategiesCompleteACommonProgram(t *testing.T) {
	strategies := []Strategy{
		NewRoundRobin(),
		NewRandom(),
		NewPCT(3, 500),
		NewDelay(0.2, 4),
		NewReplay([]int{1, 0, 1, 0, 1}),
		NewRecording(NewRandom()),
	}
	for _, st := range strategies {
		st := st
		t.Run(st.Name(), func(t *testing.T) {
			total := 0
			res, _ := run(t, Options{Strategy: st, Seed: 11}, func(g *G) {
				ch := NewChan[int](g, "ch", 2)
				wg := NewWaitGroup(g, "wg")
				for i := 1; i <= 4; i++ {
					wg.Add(g, 1)
					i := i
					g.Go("p", func(g *G) {
						ch.Send(g, i)
						wg.Done(g)
					})
				}
				for i := 0; i < 4; i++ {
					v, _ := ch.Recv(g)
					total += v
				}
				wg.Wait(g)
			})
			if total != 10 {
				t.Fatalf("total = %d", total)
			}
			if res.Deadlocked() || res.BudgetExceeded {
				t.Fatalf("%+v", res)
			}
		})
	}
}

func TestRecordingStrategyCapturesDecisions(t *testing.T) {
	recStrat := NewRecording(NewRandom())
	_, _ = run(t, Options{Strategy: recStrat, Seed: 2}, func(g *G) {
		v := NewVar[int](g, "x")
		g.Go("w", func(g *G) { v.Store(g, 1) })
		v.Store(g, 2)
	})
	if len(recStrat.Picks) == 0 {
		t.Fatal("no decisions recorded")
	}
	for _, p := range recStrat.Picks {
		if p.Chosen >= p.Options {
			t.Fatalf("invalid record %+v", p)
		}
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(func(g *G) {
			v := NewVar[int](g, "x")
			mu := NewMutex(g, "mu")
			wg := NewWaitGroup(g, "wg")
			for j := 0; j < 4; j++ {
				wg.Add(g, 1)
				g.Go("w", func(g *G) {
					for k := 0; k < 25; k++ {
						mu.Lock(g)
						v.Store(g, v.Load(g)+1)
						mu.Unlock(g)
					}
					wg.Done(g)
				})
			}
			wg.Wait(g)
		}, Options{Seed: int64(i), MaxSteps: 1 << 16})
	}
}

func TestMapRange(t *testing.T) {
	var visited []string
	_, rec := run(t, Options{}, func(g *G) {
		m := NewMap[string, int](g, "m")
		m.Put(g, "b", 2)
		m.Put(g, "a", 1)
		m.Range(g, func(k string, v int) bool {
			visited = append(visited, k)
			return true
		})
	})
	if len(visited) != 2 {
		t.Fatalf("visited = %v", visited)
	}
	// Deterministic order: insertion-assigned cells, so "b" first.
	if visited[0] != "b" || visited[1] != "a" {
		t.Fatalf("order = %v", visited)
	}
	ops := rec.CountOps()
	// 2 puts x2 writes; range: 1 internal + 2 key reads; puts also 2x2.
	if ops[trace.OpRead] != 3 {
		t.Fatalf("range reads = %d, want 3", ops[trace.OpRead])
	}
}

func TestMapRangeEarlyStop(t *testing.T) {
	count := 0
	run(t, Options{}, func(g *G) {
		m := NewMap[int, int](g, "m")
		m.Put(g, 1, 1)
		m.Put(g, 2, 2)
		m.Put(g, 3, 3)
		m.Range(g, func(int, int) bool {
			count++
			return count < 2
		})
	})
	if count != 2 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestSliceRange(t *testing.T) {
	var got []int
	run(t, Options{}, func(g *G) {
		sl := NewSlice[int](g, "s", 0)
		sl.Append(g, 10)
		sl.Append(g, 20)
		sl.Range(g, func(i, v int) bool {
			got = append(got, v)
			return true
		})
	})
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("range = %v", got)
	}
}
