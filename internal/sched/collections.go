package sched

import "gorace/internal/trace"

// Map models Go's built-in map, which is thread-unsafe (Observation 5).
// Every operation touches two shadow cells:
//
//   - a per-key cell, so same-key conflicts are precise; and
//   - the map-internal cell, modeling the shared sparse structure
//     (buckets, count, growth state) that every insert/delete/lookup
//     touches in the real runtime.
//
// This is why two goroutines inserting *different* keys still race —
// the false "disjoint element access" intuition the paper calls out
// for the errMap[uuid] = err pattern (Listing 6).
type Map[K comparable, V any] struct {
	s        *Scheduler
	name     string
	internal trace.Addr
	keyAddrs map[K]trace.Addr
	m        map[K]V
}

// NewMap allocates a modeled map.
func NewMap[K comparable, V any](g *G, name string) *Map[K, V] {
	return &Map[K, V]{
		s:        g.s,
		name:     name,
		internal: g.s.addrFor(g),
		keyAddrs: make(map[K]trace.Addr),
		m:        make(map[K]V),
	}
}

// InternalAddr exposes the sparse-structure cell, for classifiers.
func (m *Map[K, V]) InternalAddr() trace.Addr { return m.internal }

// Name returns the diagnostic name.
func (m *Map[K, V]) Name() string { return m.name }

func (m *Map[K, V]) keyAddr(g *G, k K) trace.Addr {
	a, ok := m.keyAddrs[k]
	if !ok {
		a = m.s.addrFor(g)
		m.keyAddrs[k] = a
	}
	return a
}

// Get models v, ok := m[k].
func (m *Map[K, V]) Get(g *G, k K) (V, bool) {
	g.point()
	m.s.emit(g, trace.Event{Op: trace.OpRead, Addr: m.internal, Label: m.name + "(internal)"})
	m.s.emit(g, trace.Event{Op: trace.OpRead, Addr: m.keyAddr(g, k), Label: m.name + "[key]"})
	v, ok := m.m[k]
	return v, ok
}

// Put models m[k] = v: a write to the sparse structure and to the key.
func (m *Map[K, V]) Put(g *G, k K, v V) {
	g.point()
	m.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: m.internal, Label: m.name + "(internal)"})
	m.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: m.keyAddr(g, k), Label: m.name + "[key]"})
	m.m[k] = v
}

// Delete models delete(m, k).
func (m *Map[K, V]) Delete(g *G, k K) {
	g.point()
	m.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: m.internal, Label: m.name + "(internal)"})
	m.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: m.keyAddr(g, k), Label: m.name + "[key]"})
	delete(m.m, k)
}

// Len models len(m), a read of the shared structure.
func (m *Map[K, V]) Len(g *G) int {
	g.point()
	m.s.emit(g, trace.Event{Op: trace.OpRead, Addr: m.internal, Label: m.name + "(internal)"})
	return len(m.m)
}

// Range models `for k, v := range m`: iteration reads the shared
// sparse structure and every visited key cell, so it races with any
// concurrent insert or delete — the "iterate while someone writes"
// shape behind many of the paper's map races. Iteration order is made
// deterministic (sorted by insertion-assigned cell id) so modeled runs
// replay exactly.
func (m *Map[K, V]) Range(g *G, fn func(k K, v V) bool) {
	g.point()
	m.s.emit(g, trace.Event{Op: trace.OpRead, Addr: m.internal, Label: m.name + "(internal)"})
	type kv struct {
		k K
		a trace.Addr
	}
	var keys []kv
	for k := range m.m {
		keys = append(keys, kv{k, m.keyAddr(g, k)})
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].a < keys[j-1].a; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, e := range keys {
		m.s.emit(g, trace.Event{Op: trace.OpRead, Addr: e.a, Label: m.name + "[key]"})
		if !fn(e.k, m.m[e.k]) {
			return
		}
	}
}

// Keys models collecting the map's keys for iteration: one read of the
// shared sparse structure, returning the keys in deterministic
// (insertion-assigned cell id) order. Instrumented `for k := range m`
// loops lower to a Keys call plus per-iteration Gets, which keeps
// `break`, `continue`, and `return` inside the loop body legal.
func (m *Map[K, V]) Keys(g *G) []K {
	g.point()
	m.s.emit(g, trace.Event{Op: trace.OpRead, Addr: m.internal, Label: m.name + "(internal)"})
	type kv struct {
		k K
		a trace.Addr
	}
	var keys []kv
	for k := range m.m {
		keys = append(keys, kv{k, m.keyAddr(g, k)})
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].a < keys[j-1].a; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]K, len(keys))
	for i, e := range keys {
		out[i] = e.k
	}
	return out
}

// Snapshot returns a plain copy of the contents without instrumentation,
// for assertions in tests (not part of the modeled program).
func (m *Map[K, V]) Snapshot() map[K]V {
	out := make(map[K]V, len(m.m))
	for k, v := range m.m {
		out[k] = v
	}
	return out
}

// Slice models a Go slice, distinguishing its *meta cell* (the
// pointer/len/cap header) from per-element cells. Observation 4: an
// append mutates the meta cell, so it races not only with element
// accesses but with any copy of the header — including the innocuous-
// looking "pass the slice as an argument" of Listing 5, modeled by
// Header.
type Slice[T any] struct {
	s         *Scheduler
	name      string
	meta      trace.Addr
	elems     []T
	elemAddrs []trace.Addr
}

// NewSlice allocates a modeled slice of the given initial length.
func NewSlice[T any](g *G, name string, n int) *Slice[T] {
	sl := &Slice[T]{s: g.s, name: name, meta: g.s.addrFor(g)}
	for i := 0; i < n; i++ {
		sl.elems = append(sl.elems, *new(T))
		sl.elemAddrs = append(sl.elemAddrs, g.s.addrFor(g))
	}
	return sl
}

// NewSliceOf allocates a modeled slice initialized from elems, without
// emitting writes (declaration-time initialization is not an access
// visible to other goroutines yet). Instrumented slice literals lower
// to this constructor.
func NewSliceOf[T any](g *G, name string, elems []T) *Slice[T] {
	sl := NewSlice[T](g, name, len(elems))
	copy(sl.elems, elems)
	return sl
}

// MetaAddr exposes the header cell, for classifiers.
func (s *Slice[T]) MetaAddr() trace.Addr { return s.meta }

// Name returns the diagnostic name.
func (s *Slice[T]) Name() string { return s.name }

// Append models sl = append(sl, v): reads then writes the header
// (length/capacity update, possible reallocation) and writes the new
// element.
func (s *Slice[T]) Append(g *G, v T) {
	g.point()
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.meta, Label: s.name + "(meta)"})
	s.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: s.meta, Label: s.name + "(meta)"})
	s.elems = append(s.elems, v)
	// Reuse the cell of a previously truncated element (the real
	// runtime reuses that memory too); allocate only past the
	// high-water mark.
	if len(s.elemAddrs) < len(s.elems) {
		s.elemAddrs = append(s.elemAddrs, s.s.addrFor(g))
	}
	s.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: s.elemAddrs[len(s.elems)-1], Label: s.name + "[new]"})
}

// Truncate models sl = sl[:n]: re-slicing reads and writes the header
// without touching elements. Instrumented slice-expression shrinks
// (`s = s[:len(s)-1]`) lower to this.
func (s *Slice[T]) Truncate(g *G, n int) {
	g.point()
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.meta, Label: s.name + "(meta)"})
	if n < 0 || n > len(s.elems) {
		s.s.fail(g, "slice bounds out of range [:%d] with length %d on %s", n, len(s.elems), s.name)
		return
	}
	s.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: s.meta, Label: s.name + "(meta)"})
	s.elems = s.elems[:n]
}

// Values models reading the whole slice (e.g. expanding it into a
// variadic call, or copying it out): the header and every element are
// read, and a plain copy is returned.
func (s *Slice[T]) Values(g *G) []T {
	g.point()
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.meta, Label: s.name + "(meta)"})
	out := make([]T, len(s.elems))
	for i := range s.elems {
		s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.elemAddrs[i], Label: s.name + "[i]"})
		out[i] = s.elems[i]
	}
	return out
}

// Get models v := sl[i]: the bounds check reads the header, then the
// element is read.
func (s *Slice[T]) Get(g *G, i int) T {
	g.point()
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.meta, Label: s.name + "(meta)"})
	if i < 0 || i >= len(s.elems) {
		s.s.fail(g, "index out of range [%d] with length %d on %s", i, len(s.elems), s.name)
		return *new(T)
	}
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.elemAddrs[i], Label: s.name + "[i]"})
	return s.elems[i]
}

// Set models sl[i] = v.
func (s *Slice[T]) Set(g *G, i int, v T) {
	g.point()
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.meta, Label: s.name + "(meta)"})
	if i < 0 || i >= len(s.elems) {
		s.s.fail(g, "index out of range [%d] with length %d on %s", i, len(s.elems), s.name)
		return
	}
	s.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: s.elemAddrs[i], Label: s.name + "[i]"})
	s.elems[i] = v
}

// Len models len(sl), a read of the header.
func (s *Slice[T]) Len(g *G) int {
	g.point()
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.meta, Label: s.name + "(meta)"})
	return len(s.elems)
}

// Header models copying the slice header — passing the slice by value
// to a function or goroutine (Listing 5, line 14). The copy reads the
// meta cell without touching elements, so it races with concurrent
// appends even when every append is lock-protected.
func (s *Slice[T]) Header(g *G) {
	g.point()
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.meta, Label: s.name + "(meta copy)"})
}

// Range models `for i, v := range sl`: the header is read once (range
// evaluates its operand once) and each element is read in order.
func (s *Slice[T]) Range(g *G, fn func(i int, v T) bool) {
	g.point()
	s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.meta, Label: s.name + "(meta)"})
	n := len(s.elems)
	for i := 0; i < n && i < len(s.elems); i++ {
		s.s.emit(g, trace.Event{Op: trace.OpRead, Addr: s.elemAddrs[i], Label: s.name + "[i]"})
		if !fn(i, s.elems[i]) {
			return
		}
	}
}

// Snapshot returns a plain copy of the elements, for test assertions.
func (s *Slice[T]) Snapshot() []T {
	out := make([]T, len(s.elems))
	copy(out, s.elems)
	return out
}

// Once models sync.Once: the winning Do runs fn and releases; every
// later Do blocks until fn completes, then acquires the completion
// edge without running fn — so fn's effects happen before every Do
// return, as sync.Once guarantees.
type Once struct {
	s       *Scheduler
	id      trace.ObjID
	name    string
	running bool
	done    bool
}

// NewOnce allocates a modeled Once.
func NewOnce(g *G, name string) *Once {
	return &Once{s: g.s, id: g.s.objFor(g), name: name}
}

// Do runs fn if no Do has completed yet.
func (o *Once) Do(g *G, fn func()) {
	g.point()
	for o.running {
		g.block("once " + o.name)
	}
	if o.done {
		o.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: o.id, Kind: trace.KindOnce, Label: o.name})
		return
	}
	o.running = true
	if fn != nil {
		fn()
	}
	o.running = false
	o.done = true
	o.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: o.id, Kind: trace.KindOnce, Label: o.name})
	o.s.wakeAllBlocked()
}
