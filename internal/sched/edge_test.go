package sched

import "testing"

// Edge cases and accessor coverage for the modeled primitives.

func TestAccessors(t *testing.T) {
	run(t, Options{}, func(g *G) {
		a := NewAtomic(g, "a")
		if a.Addr() == 0 || a.Name() != "a" {
			t.Error("atomic accessors")
		}
		ch := NewChan[int](g, "c", 2)
		if ch.Name() != "c" || ch.Cap() != 2 || ch.Len() != 0 {
			t.Error("chan accessors")
		}
		m := NewMap[string, int](g, "m")
		if m.InternalAddr() == 0 || m.Name() != "m" {
			t.Error("map accessors")
		}
		m.Put(g, "k", 1)
		if snap := m.Snapshot(); len(snap) != 1 || snap["k"] != 1 {
			t.Error("map snapshot")
		}
		sl := NewSlice[int](g, "s", 1)
		if sl.MetaAddr() == 0 || sl.Name() != "s" {
			t.Error("slice accessors")
		}
		sl.Set(g, 0, 7)
		if snap := sl.Snapshot(); len(snap) != 1 || snap[0] != 7 {
			t.Error("slice snapshot")
		}
		mu := NewMutex(g, "mu")
		if mu.ID() == 0 || mu.Name() != "mu" {
			t.Error("mutex accessors")
		}
		rw := NewRWMutex(g, "rw")
		if rw.ID() == 0 {
			t.Error("rwmutex accessors")
		}
		if g.ID() != 0 || g.Name() != "main" {
			t.Error("g accessors")
		}
		wgrp := NewWaitGroup(g, "wg")
		if wgrp.Name() != "wg" {
			t.Error("wg accessors")
		}
		ctx := Background(g)
		if ctx.Name() != "background" {
			t.Error("ctx accessors")
		}
	})
}

func TestSliceSetOutOfRangeFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		sl := NewSlice[int](g, "s", 1)
		sl.Set(g, 9, 1)
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestSliceHeaderEmitsMetaRead(t *testing.T) {
	_, rec := run(t, Options{}, func(g *G) {
		sl := NewSlice[int](g, "s", 0)
		sl.Header(g)
	})
	found := false
	for _, ev := range rec.Events {
		if ev.Label == "s(meta copy)" {
			found = true
		}
	}
	if !found {
		t.Fatal("Header did not read the meta cell")
	}
}

func TestCloseWakesParkedSenders(t *testing.T) {
	// A sender parked on a full buffered channel (or unbuffered with
	// no receiver) must be failed and released by Close.
	res, _ := run(t, Options{Strategy: NewRoundRobin()}, func(g *G) {
		ch := NewChan[int](g, "ch", 0)
		g.Go("tx", func(g *G) {
			ch.Send(g, 1) // parks: no receiver
		})
		// Let the sender park, then close.
		for i := 0; i < 4; i++ {
			g.Yield()
		}
		ch.Close(g)
	})
	if res.Deadlocked() {
		t.Fatalf("sender not released by close: %+v", res.Leaked)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("expected one send-on-closed failure, got %v", res.Failures)
	}
}

func TestBufferedSendBlockedThenClosed(t *testing.T) {
	res, _ := run(t, Options{Strategy: NewRoundRobin()}, func(g *G) {
		ch := NewChan[int](g, "ch", 1)
		ch.Send(g, 1) // fills the buffer
		g.Go("tx", func(g *G) {
			ch.Send(g, 2) // parks: buffer full
		})
		for i := 0; i < 4; i++ {
			g.Yield()
		}
		ch.Close(g)
	})
	if res.Deadlocked() {
		t.Fatalf("blocked buffered sender not released: %+v", res.Leaked)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestSelectSendOnClosedChannelFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		ch := NewChan[int](g, "ch", 1)
		ch.Close(g)
		// A closed channel is "ready" for send — executing the arm
		// surfaces the send-on-closed failure, as real Go panics.
		g.Select(OnSend(ch, 1, nil))
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestSelectSendUnbufferedToParkedReceiver(t *testing.T) {
	var got int
	res, _ := run(t, Options{Strategy: NewRoundRobin()}, func(g *G) {
		ch := NewChan[int](g, "ch", 0)
		done := NewChan[int](g, "done", 0)
		g.Go("rx", func(g *G) {
			v, _ := ch.Recv(g) // parks first under round-robin
			got = v
			done.Send(g, 1)
		})
		for !ch.sendReady() { // wait until the receiver has parked
			g.Yield()
		}
		picked := g.Select(OnSend(ch, 77, nil))
		if picked != 0 {
			t.Errorf("picked = %d", picked)
		}
		done.Recv(g)
	})
	if got != 77 || res.Deadlocked() {
		t.Fatalf("got %d, %+v", got, res)
	}
}

func TestSelectRecvDrainsClosedBuffered(t *testing.T) {
	// A closed buffered channel first yields its values, then zero.
	var vals []int
	var oks []bool
	run(t, Options{}, func(g *G) {
		ch := NewChan[int](g, "ch", 2)
		ch.Send(g, 1)
		ch.Close(g)
		for i := 0; i < 2; i++ {
			g.Select(OnRecv(ch, func(v int, ok bool) {
				vals = append(vals, v)
				oks = append(oks, ok)
			}))
		}
	})
	if len(vals) != 2 || vals[0] != 1 || !oks[0] || oks[1] {
		t.Fatalf("drain = %v %v", vals, oks)
	}
}

func TestDoubleCloseFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		ch := NewChan[int](g, "ch", 0)
		ch.Close(g)
		ch.Close(g)
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestWaitGroupNegativeCounterFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		wg := NewWaitGroup(g, "wg")
		wg.Done(g)
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
	res2, _ := run(t, Options{}, func(g *G) {
		wg := NewWaitGroup(g, "wg")
		wg.Add(g, -1)
	})
	if len(res2.Failures) != 1 {
		t.Fatalf("failures = %v", res2.Failures)
	}
}

func TestRWMutexUnlockWithoutLockFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		rw := NewRWMutex(g, "rw")
		rw.Unlock(g)
		rw.RUnlock(g)
	})
	if len(res.Failures) != 2 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestRWMutexClone(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		rw := NewRWMutex(g, "rw")
		rw.Lock(g)
		c := rw.Clone(g)
		c.Lock(g) // the copy shares no state: no deadlock
		c.Unlock(g)
		rw.Unlock(g)
	})
	if res.Deadlocked() || len(res.Failures) > 0 {
		t.Fatalf("%+v", res)
	}
}

func TestSelectChoosesAmongReadyArmsFairly(t *testing.T) {
	// With two ready arms, the random strategy's Choose must pick
	// each arm in some run — Go's select picks uniformly among ready
	// cases, and corpus programs (Listing 9) rely on both arms being
	// reachable.
	picks := make(map[int]int)
	for seed := int64(0); seed < 30; seed++ {
		run(t, Options{Strategy: NewRandom(), Seed: seed}, func(g *G) {
			a := NewChan[int](g, "a", 1)
			b := NewChan[int](g, "b", 1)
			a.Send(g, 1)
			b.Send(g, 2)
			picks[g.Select(OnRecv(a, nil), OnRecv(b, nil))]++
		})
	}
	if picks[0] == 0 || picks[1] == 0 {
		t.Fatalf("select starved an arm: %v", picks)
	}
}
