package sched

import (
	"testing"

	"gorace/internal/trace"
)

// stableProg spawns workers that each allocate cells dynamically, so
// under the default allocator the cells' addresses depend on how the
// workers interleave.
func stableProg(g *G) {
	g.StableIDs()
	done := NewWaitGroup(g, "done")
	done.Add(g, 2)
	for i := 0; i < 2; i++ {
		i := i
		g.Go("worker", func(g *G) {
			name := []string{"left", "right"}[i]
			local := NewVar[int](g, name)
			mu := NewMutex(g, name+".mu")
			mu.Lock(g)
			local.Store(g, i)
			mu.Unlock(g)
			done.Done(g)
		})
	}
	done.Wait(g)
}

// addrsByLabel runs prog under seed and returns each written label's
// address.
func addrsByLabel(t *testing.T, prog func(*G), seed int64) map[string]trace.Addr {
	t.Helper()
	rec := &trace.Recorder{}
	res := Run(prog, Options{Seed: seed, Strategy: NewRandom(), Listeners: []trace.Listener{rec}})
	if len(res.Failures) > 0 {
		t.Fatalf("failures: %v", res.Failures)
	}
	out := make(map[string]trace.Addr)
	for _, ev := range rec.Events {
		if ev.Op == trace.OpWrite {
			out[ev.Label] = ev.Addr
		}
	}
	return out
}

func TestStableIDsDeterministicAcrossSeeds(t *testing.T) {
	base := addrsByLabel(t, stableProg, 1)
	if len(base) == 0 {
		t.Fatal("no writes observed")
	}
	for seed := int64(2); seed < 12; seed++ {
		got := addrsByLabel(t, stableProg, seed)
		for label, addr := range base {
			if got[label] != addr {
				t.Fatalf("seed %d: label %q at a%d, want a%d", seed, label, got[label], addr)
			}
		}
	}
}

func TestDefaultModeStaysSequential(t *testing.T) {
	var addrs []trace.Addr
	Run(func(g *G) {
		a := NewVar[int](g, "a")
		b := NewVar[int](g, "b")
		addrs = []trace.Addr{a.Addr(), b.Addr()}
	}, Options{})
	if addrs[0] != 1 || addrs[1] != 2 {
		t.Fatalf("default allocator not sequential: %v", addrs)
	}
}

func TestStableIDsTooLateFails(t *testing.T) {
	res := Run(func(g *G) {
		NewVar[int](g, "x")
		g.StableIDs()
	}, Options{})
	if len(res.Failures) == 0 {
		t.Fatal("StableIDs after an allocation should record a model failure")
	}
}

func TestSpawnPathsAreStructural(t *testing.T) {
	paths := make(map[string]string) // name -> path
	Run(func(g *G) {
		if g.Path() != "0" {
			t.Errorf("main path %q, want 0", g.Path())
		}
		for i := 0; i < 2; i++ {
			name := []string{"a", "b"}[i]
			g.Go(name, func(g *G) {
				paths[name] = g.Path()
				g.Go(name+"-kid", func(g *G) { paths[name+"-kid"] = g.Path() })
			})
		}
	}, Options{})
	want := map[string]string{"a": "0.0", "b": "0.1", "a-kid": "0.0.0", "b-kid": "0.1.0"}
	for name, p := range want {
		if paths[name] != p {
			t.Errorf("path of %s = %q, want %q", name, paths[name], p)
		}
	}
}

func TestSliceTruncateAppendReusesCells(t *testing.T) {
	Run(func(g *G) {
		s := NewSliceOf[int](g, "s", []int{1, 2, 3})
		if s.Len(g) != 3 {
			t.Fatalf("len = %d, want 3", s.Len(g))
		}
		s.Truncate(g, 1)
		before := s.s.nextAddr
		s.Append(g, 9)
		if s.s.nextAddr != before {
			t.Fatal("Append after Truncate should reuse the freed element cell")
		}
		if got := s.Snapshot(); len(got) != 2 || got[1] != 9 {
			t.Fatalf("contents %v, want [1 9]", got)
		}
		vals := s.Values(g)
		if len(vals) != 2 || vals[0] != 1 || vals[1] != 9 {
			t.Fatalf("Values = %v", vals)
		}
	}, Options{})
}

func TestMapKeysDeterministic(t *testing.T) {
	Run(func(g *G) {
		m := NewMap[string, int](g, "m")
		m.Put(g, "b", 2)
		m.Put(g, "a", 1)
		m.Put(g, "c", 3)
		keys := m.Keys(g)
		// Insertion-assigned cell order, not sort order.
		want := []string{"b", "a", "c"}
		for i, k := range want {
			if keys[i] != k {
				t.Fatalf("Keys = %v, want %v", keys, want)
			}
		}
	}, Options{})
}

func TestAtomicCompareAndSwap(t *testing.T) {
	Run(func(g *G) {
		a := NewAtomic(g, "a")
		a.Store(g, 5)
		if a.CompareAndSwap(g, 4, 9) {
			t.Fatal("CAS with wrong old value succeeded")
		}
		if !a.CompareAndSwap(g, 5, 9) {
			t.Fatal("CAS with right old value failed")
		}
		if a.Load(g) != 9 {
			t.Fatalf("value = %d, want 9", a.Load(g))
		}
	}, Options{})
}
