package sched

import "gorace/internal/trace"

// Mutex models sync.Mutex. Unlock→Lock establishes the happens-before
// edge (emitted as Release/Acquire on the mutex object), and the
// lockset detector tracks held mutexes through the same events.
type Mutex struct {
	s     *Scheduler
	id    trace.ObjID
	name  string
	held  bool
	owner *G
}

// NewMutex allocates a modeled mutex.
func NewMutex(g *G, name string) *Mutex {
	return &Mutex{s: g.s, id: g.s.objFor(g), name: name}
}

// ID exposes the sync object identity.
func (m *Mutex) ID() trace.ObjID { return m.id }

// Name returns the diagnostic name.
func (m *Mutex) Name() string { return m.name }

// Clone models passing the mutex *by value* (Listing 7): the copy is a
// distinct mutex sharing no internal state with the original, which is
// precisely why by-value mutex parameters provide no mutual exclusion.
func (m *Mutex) Clone(g *G) *Mutex {
	g.point()
	return &Mutex{s: m.s, id: m.s.objFor(g), name: m.name + "(copy)", held: m.held}
}

// Lock acquires the mutex, blocking while it is held.
func (m *Mutex) Lock(g *G) {
	g.point()
	for m.held {
		g.block("mutex " + m.name)
	}
	m.held = true
	m.owner = g
	m.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: m.id, Kind: trace.KindMutex, Label: m.name})
}

// Unlock releases the mutex. Unlocking an unheld mutex is recorded as
// a model failure (real Go panics with "unlock of unlocked mutex").
func (m *Mutex) Unlock(g *G) {
	g.point()
	if !m.held {
		m.s.fail(g, "unlock of unlocked mutex %s", m.name)
		return
	}
	m.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: m.id, Kind: trace.KindMutex, Label: m.name})
	m.held = false
	m.owner = nil
	m.s.wakeAllBlocked()
}

// wakeAllBlocked wakes every blocked goroutine so it can re-check its
// wait condition. Modeled programs are small, so the thundering herd
// is cheap and keeps the wait logic in one place (the blocking loops).
func (s *Scheduler) wakeAllBlocked() {
	for _, g := range s.gs {
		if g.state == gBlocked {
			s.wake(g)
		}
	}
}

// RWMutex models sync.RWMutex. The write side behaves like Mutex. The
// read side uses a separate release object (rid): RUnlock releases
// into rid and a writer's Lock acquires rid, so reader→writer edges
// exist while readers stay mutually concurrent — which is exactly what
// makes "mutating shared data under RLock" (Listing 11, Observation
// 10) a detectable race.
type RWMutex struct {
	s       *Scheduler
	id      trace.ObjID // write-side object
	rid     trace.ObjID // read-release object
	name    string
	writer  *G
	readers int
}

// NewRWMutex allocates a modeled reader-writer mutex.
func NewRWMutex(g *G, name string) *RWMutex {
	return &RWMutex{s: g.s, id: g.s.objFor(g), rid: g.s.objFor(g), name: name}
}

// ID exposes the write-side sync object identity.
func (m *RWMutex) ID() trace.ObjID { return m.id }

// Clone models a by-value copy (a fresh, unrelated RWMutex).
func (m *RWMutex) Clone(g *G) *RWMutex {
	g.point()
	return &RWMutex{s: m.s, id: m.s.objFor(g), rid: m.s.objFor(g), name: m.name + "(copy)"}
}

// Lock acquires the write lock.
func (m *RWMutex) Lock(g *G) {
	g.point()
	for m.writer != nil || m.readers > 0 {
		g.block("rwmutex(w) " + m.name)
	}
	m.writer = g
	m.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: m.id, Kind: trace.KindMutex, Label: m.name})
	m.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: m.rid, Kind: trace.KindInternal, Label: m.name + ".readers"})
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock(g *G) {
	g.point()
	if m.writer != g {
		m.s.fail(g, "unlock of rwmutex %s not held in write mode", m.name)
		return
	}
	m.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: m.id, Kind: trace.KindMutex, Label: m.name})
	m.writer = nil
	m.s.wakeAllBlocked()
}

// RLock acquires the lock in read mode; concurrent readers may hold it
// simultaneously.
func (m *RWMutex) RLock(g *G) {
	g.point()
	for m.writer != nil {
		g.block("rwmutex(r) " + m.name)
	}
	m.readers++
	// HB: the reader observes everything the last writer published.
	// Lockset: KindRWRead acquire records the lock as held read-only.
	m.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: m.id, Kind: trace.KindRWRead, Label: m.name})
}

// RUnlock releases the read mode.
func (m *RWMutex) RUnlock(g *G) {
	g.point()
	if m.readers <= 0 {
		m.s.fail(g, "runlock of rwmutex %s with no readers", m.name)
		return
	}
	m.readers--
	// HB: accumulate this reader's clock for the next writer.
	m.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: m.rid, Kind: trace.KindInternal, Label: m.name + ".readers"})
	// Lockset bookkeeping only: KindRWRead release carries no HB join.
	m.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: m.id, Kind: trace.KindRWRead, Label: m.name})
	m.s.wakeAllBlocked()
}
