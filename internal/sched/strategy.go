package sched

import (
	"math/rand"

	"gorace/internal/vclock"
)

// Strategy decides which runnable goroutine executes at each scheduling
// point, and resolves k-way choices (e.g. ready select arms).
//
// Strategies receive the shared run RNG, so a fixed Options.Seed fully
// determines the schedule — the property that makes flakiness (§3.2.1)
// measurable: run the same program under many seeds and count in how
// many schedules the race manifests.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Reset prepares the strategy for a fresh run.
	Reset(seed int64)
	// OnSpawn notifies the strategy of a new goroutine.
	OnSpawn(tid vclock.TID, rng *rand.Rand)
	// Pick returns an index into runnable (len ≥ 1).
	Pick(runnable []*G, step int, rng *rand.Rand) int
	// Choose resolves a k-way choice (select arms); returns [0, n).
	Choose(n int, rng *rand.Rand) int
}

// RoundRobin rotates through runnable goroutines deterministically. It
// is the most "polite" schedule: races needing tight preemption often
// stay dormant under it, which is useful as a low-manifestation
// baseline.
type RoundRobin struct{ turn int }

// NewRoundRobin returns a round-robin strategy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Strategy.
func (r *RoundRobin) Name() string { return "roundrobin" }

// Reset implements Strategy.
func (r *RoundRobin) Reset(int64) { r.turn = 0 }

// OnSpawn implements Strategy.
func (r *RoundRobin) OnSpawn(vclock.TID, *rand.Rand) {}

// Pick implements Strategy.
func (r *RoundRobin) Pick(runnable []*G, _ int, _ *rand.Rand) int {
	r.turn++
	return r.turn % len(runnable)
}

// Choose implements Strategy.
func (r *RoundRobin) Choose(n int, _ *rand.Rand) int { return 0 }

// Random picks uniformly among runnable goroutines — the classic
// "schedule fuzzing" baseline (RaceFuzzer-style random walks).
type Random struct{}

// NewRandom returns a random-walk strategy.
func NewRandom() *Random { return &Random{} }

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// Reset implements Strategy.
func (r *Random) Reset(int64) {}

// OnSpawn implements Strategy.
func (r *Random) OnSpawn(vclock.TID, *rand.Rand) {}

// Pick implements Strategy.
func (r *Random) Pick(runnable []*G, _ int, rng *rand.Rand) int {
	return rng.Intn(len(runnable))
}

// Choose implements Strategy.
func (r *Random) Choose(n int, rng *rand.Rand) int { return rng.Intn(n) }

// PCT implements the probabilistic concurrency testing scheduler
// (Burckhardt et al.): goroutines get random distinct priorities; the
// highest-priority runnable goroutine always runs, except at d random
// change points where the running goroutine's priority drops to the
// minimum. PCT gives probabilistic detection guarantees for bugs of
// depth d.
type PCT struct {
	Depth        int // number of priority change points (bug depth)
	StepEstimate int // estimated run length; change points land in [0, k)

	prios        map[vclock.TID]int
	nextPrio     int
	minPrio      int
	changePoints map[int]bool
}

// NewPCT returns a PCT strategy with the given depth and step estimate.
func NewPCT(depth, stepEstimate int) *PCT {
	if depth < 1 {
		depth = 1
	}
	if stepEstimate < 1 {
		stepEstimate = 1000
	}
	return &PCT{Depth: depth, StepEstimate: stepEstimate}
}

// Name implements Strategy.
func (p *PCT) Name() string { return "pct" }

// Reset implements Strategy.
func (p *PCT) Reset(seed int64) {
	p.prios = make(map[vclock.TID]int)
	p.nextPrio = 0
	p.minPrio = 0
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	p.changePoints = make(map[int]bool, p.Depth)
	for len(p.changePoints) < p.Depth {
		p.changePoints[rng.Intn(p.StepEstimate)] = true
	}
}

// OnSpawn implements Strategy.
func (p *PCT) OnSpawn(tid vclock.TID, rng *rand.Rand) {
	// Random insertion order approximates random distinct priorities.
	p.nextPrio++
	p.prios[tid] = p.nextPrio + rng.Intn(len(p.prios)+1)
}

// Pick implements Strategy.
func (p *PCT) Pick(runnable []*G, step int, _ *rand.Rand) int {
	best, bestPrio := 0, -1<<30
	for i, g := range runnable {
		if pr := p.prios[g.id]; pr > bestPrio {
			best, bestPrio = i, pr
		}
	}
	if p.changePoints[step] {
		p.minPrio--
		p.prios[runnable[best].id] = p.minPrio
		// Re-pick after the demotion.
		best, bestPrio = 0, -1<<30
		for i, g := range runnable {
			if pr := p.prios[g.id]; pr > bestPrio {
				best, bestPrio = i, pr
			}
		}
	}
	return best
}

// Choose implements Strategy.
func (p *PCT) Choose(n int, rng *rand.Rand) int { return rng.Intn(n) }

// Delay models TSVD-style delay injection: mostly random scheduling,
// but with probability P the strategy "injects a delay" by putting the
// goroutine it would have picked to sleep for Span steps, forcing
// other goroutines to overlap with its pending operation.
type Delay struct {
	P    float64 // injection probability at each pick (default 0.05)
	Span int     // delay length in steps (default 8)

	sleepUntil map[vclock.TID]int
}

// NewDelay returns a delay-injection strategy.
func NewDelay(p float64, span int) *Delay {
	if p <= 0 {
		p = 0.05
	}
	if span <= 0 {
		span = 8
	}
	return &Delay{P: p, Span: span}
}

// Name implements Strategy.
func (d *Delay) Name() string { return "delay" }

// Reset implements Strategy.
func (d *Delay) Reset(int64) { d.sleepUntil = make(map[vclock.TID]int) }

// OnSpawn implements Strategy.
func (d *Delay) OnSpawn(vclock.TID, *rand.Rand) {}

// Pick implements Strategy.
func (d *Delay) Pick(runnable []*G, step int, rng *rand.Rand) int {
	cand := rng.Intn(len(runnable))
	if len(runnable) > 1 && rng.Float64() < d.P {
		d.sleepUntil[runnable[cand].id] = step + d.Span
	}
	// Prefer a non-sleeping goroutine, scanning from the candidate.
	for i := 0; i < len(runnable); i++ {
		j := (cand + i) % len(runnable)
		if d.sleepUntil[runnable[j].id] <= step {
			return j
		}
	}
	return cand // everyone is sleeping; run the candidate anyway
}

// Choose implements Strategy.
func (d *Delay) Choose(n int, rng *rand.Rand) int { return rng.Intn(n) }

// Replay replays a recorded decision sequence, then falls back to
// first-runnable. The exhaustive (CHESS-style) explorer in
// internal/explore drives runs by extending replayed prefixes.
type Replay struct {
	Choices []int
	pos     int
}

// NewReplay returns a strategy replaying the given decision sequence.
func NewReplay(choices []int) *Replay { return &Replay{Choices: choices} }

// Name implements Strategy.
func (r *Replay) Name() string { return "replay" }

// Reset implements Strategy.
func (r *Replay) Reset(int64) { r.pos = 0 }

// OnSpawn implements Strategy.
func (r *Replay) OnSpawn(vclock.TID, *rand.Rand) {}

// Pick implements Strategy.
func (r *Replay) Pick(runnable []*G, _ int, _ *rand.Rand) int {
	if r.pos < len(r.Choices) {
		c := r.Choices[r.pos]
		r.pos++
		if c < len(runnable) {
			return c
		}
		return len(runnable) - 1
	}
	r.pos++
	return 0
}

// Choose implements Strategy.
func (r *Replay) Choose(n int, _ *rand.Rand) int { return 0 }

// Recording wraps a strategy and records every decision along with its
// branching factor, enabling the explorer to enumerate alternatives.
type Recording struct {
	Inner Strategy
	// Picks[i] is the decision taken at scheduling point i and the
	// number of alternatives that were available.
	Picks []PickRecord
}

// PickRecord is one recorded scheduling decision, with enough context
// (the runnable set and the picked goroutine) for the explorer to
// count preemptions: a switch away from a goroutine that was still
// runnable.
type PickRecord struct {
	Chosen   int
	Options  int
	Picked   vclock.TID
	Runnable []vclock.TID
}

// IsPreemption reports whether choosing index `choice` at this record
// preempts prev (prev still runnable, and a different goroutine runs).
func (p PickRecord) IsPreemption(prev vclock.TID, choice int) bool {
	if choice < 0 || choice >= len(p.Runnable) {
		return false
	}
	if p.Runnable[choice] == prev {
		return false
	}
	for _, t := range p.Runnable {
		if t == prev {
			return true
		}
	}
	return false
}

// NewRecording wraps inner with decision recording.
func NewRecording(inner Strategy) *Recording { return &Recording{Inner: inner} }

// Name implements Strategy.
func (r *Recording) Name() string { return "recording(" + r.Inner.Name() + ")" }

// Reset implements Strategy.
func (r *Recording) Reset(seed int64) {
	r.Picks = r.Picks[:0]
	r.Inner.Reset(seed)
}

// OnSpawn implements Strategy.
func (r *Recording) OnSpawn(tid vclock.TID, rng *rand.Rand) { r.Inner.OnSpawn(tid, rng) }

// Pick implements Strategy.
func (r *Recording) Pick(runnable []*G, step int, rng *rand.Rand) int {
	c := r.Inner.Pick(runnable, step, rng)
	if c < 0 || c >= len(runnable) {
		c = 0
	}
	tids := make([]vclock.TID, len(runnable))
	for i, g := range runnable {
		tids[i] = g.id
	}
	r.Picks = append(r.Picks, PickRecord{
		Chosen: c, Options: len(runnable), Picked: runnable[c].id, Runnable: tids,
	})
	return c
}

// Choose implements Strategy.
func (r *Recording) Choose(n int, rng *rand.Rand) int { return r.Inner.Choose(n, rng) }
