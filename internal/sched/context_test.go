package sched

import "testing"

func TestContextCancelClosesDone(t *testing.T) {
	var errMsg string
	res, _ := run(t, Options{Strategy: NewRandom(), Seed: 2}, func(g *G) {
		ctx, cancel := Background(g).WithCancel(g, "req")
		g.Go("canceller", func(g *G) {
			cancel(g)
		})
		ctx.Done().Recv(g) // unblocks on cancel
		errMsg = ctx.Err(g)
	})
	if errMsg != "context canceled" {
		t.Fatalf("err = %q", errMsg)
	}
	if res.Deadlocked() || len(res.Failures) > 0 {
		t.Fatalf("%+v", res)
	}
}

func TestContextCancelIdempotent(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		_, cancel := Background(g).WithCancel(g, "req")
		cancel(g)
		cancel(g) // second cancel must not double-close
	})
	if len(res.Failures) != 0 {
		t.Fatalf("failures: %v", res.Failures)
	}
}

func TestContextTimeoutFires(t *testing.T) {
	var errMsg string
	res, _ := run(t, Options{Strategy: NewRandom(), Seed: 5}, func(g *G) {
		ctx := Background(g).WithTimeout(g, "rpc", 3)
		ctx.Done().Recv(g)
		errMsg = ctx.Err(g)
	})
	if errMsg != "context deadline exceeded" {
		t.Fatalf("err = %q", errMsg)
	}
	if res.Deadlocked() {
		t.Fatalf("%+v", res)
	}
}

func TestContextInSelect(t *testing.T) {
	// The Listing 9 shape with the modeled Context type: the select
	// takes either the work channel or ctx.Done.
	for seed := int64(0); seed < 20; seed++ {
		picked := -1
		res, _ := run(t, Options{Strategy: NewRandom(), Seed: seed}, func(g *G) {
			ctx := Background(g).WithTimeout(g, "rpc", 2)
			work := NewChan[int](g, "work", 1)
			g.Go("worker", func(g *G) {
				work.Send(g, 1) // buffered: never leaks
			})
			picked = g.Select(
				OnRecv(work, nil),
				ctx.OnDone(nil),
			)
		})
		if picked != 0 && picked != 1 {
			t.Fatalf("seed %d: picked %d", seed, picked)
		}
		if res.Deadlocked() {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestBackgroundNeverDone(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		ctx := Background(g)
		if ctx.Err(g) != "" {
			t.Error("background context has an error")
		}
		g.Go("stuck", func(g *G) {
			ctx.Done().Recv(g) // blocks forever
		})
	})
	if !res.Deadlocked() {
		t.Fatal("waiting on background Done should leak")
	}
}
