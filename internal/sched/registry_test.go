package sched

import (
	"sort"
	"strings"
	"testing"
)

func TestNewStrategyKnownNames(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := NewStrategy(name)
		if err != nil {
			t.Fatalf("NewStrategy(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("NewStrategy(%q) returned nil", name)
		}
	}
}

func TestNewStrategyDefaultsToRandom(t *testing.T) {
	s, err := NewStrategy("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != DefaultStrategyName {
		t.Fatalf("default strategy %q, want %q", s.Name(), DefaultStrategyName)
	}
}

func TestNewStrategyUnknownNameListsValid(t *testing.T) {
	_, err := NewStrategy("magic")
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range StrategyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid name %q", err, name)
		}
	}
}

func TestStrategyNamesSortedAndStable(t *testing.T) {
	a, b := StrategyNames(), StrategyNames()
	if !sort.StringsAreSorted(a) {
		t.Fatalf("StrategyNames not sorted: %v", a)
	}
	if len(a) != len(b) {
		t.Fatal("StrategyNames changed between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("StrategyNames not stable between calls")
		}
	}
	for _, want := range []string{"random", "roundrobin", "pct", "delay"} {
		found := false
		for _, got := range a {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("built-in strategy %q not registered (have %v)", want, a)
		}
	}
}

func TestRegisterStrategyDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterStrategy did not panic")
		}
	}()
	RegisterStrategy("random", func() Strategy { return NewRandom() })
}

func TestRegisterStrategyEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name RegisterStrategy did not panic")
		}
	}()
	RegisterStrategy("", func() Strategy { return NewRandom() })
}

func TestRegisterStrategyNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil-factory RegisterStrategy did not panic")
		}
	}()
	RegisterStrategy("nil-factory", nil)
}
