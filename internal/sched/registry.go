package sched

import (
	"gorace/internal/registry"
)

// DefaultStrategyName is the strategy used when no name is given.
const DefaultStrategyName = "random"

var stratReg = registry.New[Strategy]("strategy")

// RegisterStrategy adds a strategy factory under name. It panics on an
// empty name, a nil factory, or a duplicate registration.
func RegisterStrategy(name string, factory func() Strategy) { stratReg.Register(name, factory) }

// NewStrategy builds a fresh strategy by registered name ("" selects
// DefaultStrategyName). Unknown names error, listing the valid ones.
func NewStrategy(name string) (Strategy, error) {
	if name == "" {
		name = DefaultStrategyName
	}
	return stratReg.Build(name)
}

// StrategyNames returns the registered strategy names, sorted.
func StrategyNames() []string { return stratReg.Names() }

func init() {
	// Replay and Recording are deliberately absent: they require a
	// decision sequence or an inner strategy, so they are constructed
	// programmatically (core.WithStrategyFactory).
	RegisterStrategy("random", func() Strategy { return NewRandom() })
	RegisterStrategy("roundrobin", func() Strategy { return NewRoundRobin() })
	RegisterStrategy("pct", func() Strategy { return NewPCT(3, 2000) })
	RegisterStrategy("delay", func() Strategy { return NewDelay(0.05, 8) })
}
