// Package sched is the modeled concurrency runtime on which the race
// pattern corpus executes.
//
// Real Go schedules goroutines preemptively and non-deterministically,
// which is exactly why the paper's dynamic race detection is flaky
// (§3.2.1). This package replaces the real scheduler with a cooperative,
// deterministic one: modeled goroutines (G) run one at a time and hand
// control back at every instrumented operation (memory access or
// synchronization op). A pluggable Strategy decides which runnable
// goroutine proceeds at each step, so a single program can be executed
// under round-robin, seeded-random, PCT, delay-injection, or replayed
// schedules — making race manifestation measurable and repeatable.
//
// Every operation on the modeled primitives (Var, Mutex, RWMutex, Chan,
// WaitGroup, Atomic, Map, Slice) emits trace.Events to the registered
// listeners; the detectors in internal/detector consume that stream.
package sched

import (
	"fmt"
	"math/rand"

	"gorace/internal/stack"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

type gstate uint8

const (
	gReady gstate = iota
	gRunning
	gBlocked
	gDone
)

// errAborted is panicked inside a modeled goroutine to unwind it when
// the scheduler tears the run down (deadlock, leak, or step budget).
type abortSignal struct{}

// G is a modeled goroutine. All primitive operations take the acting G
// as their first argument; a G must only be used from its own body
// function.
type G struct {
	id        vclock.TID
	name      string
	path      string // structural spawn path ("0", "0.1", "0.1.2", ...)
	s         *Scheduler
	stk       *stack.Stack
	state     gstate
	resume    chan resumeMsg
	blockedOn string
	spawnN    int // children spawned so far (path suffix allocator)
	allocN    int // stable-mode shadow cells allocated by this G
	objN      int // stable-mode sync objects allocated by this G
}

type resumeMsg struct{ abort bool }

// ID returns the goroutine's TID (dense, assigned in spawn order).
func (g *G) ID() vclock.TID { return g.id }

// Name returns the goroutine's diagnostic name.
func (g *G) Name() string { return g.name }

// LeakInfo describes a goroutine still blocked when the program ended,
// e.g. the forever-blocked channel send of Listing 9.
type LeakInfo struct {
	G         vclock.TID
	Name      string
	BlockedOn string
	Stack     stack.Context
}

// Result summarizes one modeled execution.
type Result struct {
	Steps          int        // scheduling decisions taken
	Goroutines     int        // total modeled goroutines spawned
	Events         uint64     // events emitted
	Failures       []string   // model-level failures (panics, unlock of unlocked mutex, ...)
	Leaked         []LeakInfo // goroutines blocked at program end
	BudgetExceeded bool       // the step budget was hit before quiescence
}

// Deadlocked reports whether the run ended with blocked goroutines.
func (r *Result) Deadlocked() bool { return len(r.Leaked) > 0 }

// Options configures a modeled run.
type Options struct {
	// Strategy picks the next runnable goroutine. Defaults to
	// RoundRobin. Strategies are Reset with Seed at run start.
	Strategy Strategy
	// Seed drives all strategy randomness; same seed, same schedule.
	Seed int64
	// MaxSteps bounds the run (default 1 << 20 scheduling points).
	MaxSteps int
	// Listeners observe the event stream (detectors, recorders).
	Listeners []trace.Listener
}

// Scheduler owns a single modeled execution.
type Scheduler struct {
	gs        []*G
	runnable  []*G
	listeners trace.Multi
	strategy  Strategy
	rng       *rand.Rand
	parked    chan struct{}
	seq       uint64
	steps     int
	maxSteps  int
	nextAddr  trace.Addr
	nextObj   trace.ObjID
	result    Result
	// Stable identity mode (see G.StableIDs): addresses and object
	// ids are hashed from spawn paths instead of allocation order.
	// The owner maps detect (astronomically unlikely) hash collisions.
	stable    bool
	addrOwner map[trace.Addr]string
	objOwner  map[trace.ObjID]string
	// pollers are goroutines blocked in a select with no ready arm;
	// they are woken (to re-poll) on any channel state change.
	pollers []*G
}

// Run executes main as the program's main goroutine under the given
// options and returns the run summary. Detection results live in the
// listeners passed via Options.
func Run(main func(g *G), opts Options) *Result {
	s := newScheduler(opts)
	s.spawn(nil, "main", main)
	s.loop()
	s.result.Steps = s.steps
	s.result.Goroutines = len(s.gs)
	s.result.Events = s.seq
	r := s.result
	return &r
}

func newScheduler(opts Options) *Scheduler {
	st := opts.Strategy
	if st == nil {
		st = NewRoundRobin()
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	s := &Scheduler{
		listeners: trace.Multi(opts.Listeners),
		strategy:  st,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		parked:    make(chan struct{}),
		maxSteps:  maxSteps,
		nextAddr:  1,
		nextObj:   1,
	}
	st.Reset(opts.Seed)
	return s
}

// spawn creates a modeled goroutine. parent is nil only for main.
func (s *Scheduler) spawn(parent *G, name string, fn func(*G)) *G {
	path := "0"
	if parent != nil {
		path = fmt.Sprintf("%s.%d", parent.path, parent.spawnN)
		parent.spawnN++
	}
	g := &G{
		id:     vclock.TID(len(s.gs)),
		name:   name,
		path:   path,
		s:      s,
		stk:    stack.NewStack(),
		state:  gReady,
		resume: make(chan resumeMsg),
	}
	s.gs = append(s.gs, g)
	s.runnable = append(s.runnable, g)
	s.strategy.OnSpawn(g.id, s.rng)
	if parent != nil {
		s.emit(parent, trace.Event{Op: trace.OpFork, Child: g.id})
	}
	go s.body(g, fn)
	return g
}

// body is the OS-goroutine trampoline for a modeled goroutine.
func (s *Scheduler) body(g *G, fn func(*G)) {
	defer func() {
		if r := recover(); r != nil {
			if _, aborted := r.(abortSignal); !aborted {
				s.result.Failures = append(s.result.Failures,
					fmt.Sprintf("goroutine %q panicked: %v", g.name, r))
			}
		}
		g.state = gDone
		s.removeRunnable(g)
		s.emit(g, trace.Event{Op: trace.OpGoEnd})
		s.parked <- struct{}{}
	}()
	msg := <-g.resume
	if msg.abort {
		panic(abortSignal{})
	}
	fn(g)
}

// loop is the scheduling loop; it runs on the caller's goroutine and
// holds the token whenever no modeled goroutine is executing.
func (s *Scheduler) loop() {
	for {
		if len(s.runnable) == 0 {
			if s.liveCount() == 0 {
				return // quiescent: all goroutines finished
			}
			s.recordLeaks()
			s.abortAll()
			return
		}
		if s.steps >= s.maxSteps {
			s.result.BudgetExceeded = true
			s.abortAll()
			return
		}
		idx := s.strategy.Pick(s.runnable, s.steps, s.rng)
		if idx < 0 || idx >= len(s.runnable) {
			idx = 0
		}
		g := s.runnable[idx]
		g.state = gRunning
		s.steps++
		g.resume <- resumeMsg{}
		<-s.parked
		if g.state == gRunning {
			g.state = gReady
		}
	}
}

func (s *Scheduler) liveCount() int {
	n := 0
	for _, g := range s.gs {
		if g.state != gDone {
			n++
		}
	}
	return n
}

func (s *Scheduler) recordLeaks() {
	for _, g := range s.gs {
		if g.state == gBlocked {
			s.result.Leaked = append(s.result.Leaked, LeakInfo{
				G: g.id, Name: g.name, BlockedOn: g.blockedOn, Stack: g.stk.Capture(),
			})
			s.emit(g, trace.Event{Op: trace.OpGoLeak})
		}
	}
}

// abortAll unwinds every parked goroutine (runnable or blocked).
func (s *Scheduler) abortAll() {
	for _, g := range s.gs {
		if g.state == gDone || g.state == gRunning {
			continue
		}
		g.resume <- resumeMsg{abort: true}
		<-s.parked
	}
}

func (s *Scheduler) removeRunnable(g *G) {
	for i, r := range s.runnable {
		if r == g {
			s.runnable = append(s.runnable[:i], s.runnable[i+1:]...)
			return
		}
	}
}

// emit delivers an event attributed to g, filling sequence and stack.
func (s *Scheduler) emit(g *G, ev trace.Event) {
	s.seq++
	ev.Seq = s.seq
	ev.G = g.id
	ev.GName = g.name
	ev.Stack = g.stk.Capture()
	s.listeners.HandleEvent(ev)
}

// newAddr allocates a fresh shadow memory cell.
func (s *Scheduler) newAddr() trace.Addr {
	a := s.nextAddr
	s.nextAddr++
	return a
}

// newObj allocates a fresh synchronization object identity.
func (s *Scheduler) newObj() trace.ObjID {
	o := s.nextObj
	s.nextObj++
	return o
}

// point is a scheduling point: the goroutine offers the scheduler the
// chance to run someone else before its next operation executes.
func (g *G) point() {
	g.s.parked <- struct{}{}
	msg := <-g.resume
	if msg.abort {
		panic(abortSignal{})
	}
}

// block parks the goroutine until another goroutine wakes it.
func (g *G) block(reason string) {
	g.state = gBlocked
	g.blockedOn = reason
	g.s.removeRunnable(g)
	g.s.parked <- struct{}{}
	msg := <-g.resume
	if msg.abort {
		panic(abortSignal{})
	}
}

// wake moves a blocked goroutine back to the runnable set.
func (s *Scheduler) wake(g *G) {
	if g.state == gBlocked {
		g.state = gReady
		g.blockedOn = ""
		s.runnable = append(s.runnable, g)
	}
}

// wakePollers re-arms every goroutine blocked in a select poll.
func (s *Scheduler) wakePollers() {
	if len(s.pollers) == 0 {
		return
	}
	ps := s.pollers
	s.pollers = nil
	for _, g := range ps {
		s.wake(g)
	}
}

// fail records a model-level failure (the modeled program misused a
// primitive in a way real Go would panic on or forbid).
func (s *Scheduler) fail(g *G, format string, args ...any) {
	s.result.Failures = append(s.result.Failures,
		fmt.Sprintf("g%d(%s): %s", g.id, g.name, fmt.Sprintf(format, args...)))
}

// --- G program-facing helpers ---

// Go launches fn as a new modeled goroutine, mirroring the `go` keyword.
// The fork establishes the parent→child happens-before edge.
func (g *G) Go(name string, fn func(*G)) {
	g.point()
	g.s.spawn(g, name, fn)
}

// Push enters a named function frame on the modeled call stack.
func (g *G) Push(fn, file string, line int) { g.stk.Push(fn, file, line) }

// Pop leaves the innermost frame.
func (g *G) Pop() { g.stk.Pop() }

// Line updates the current source line, so subsequent events carry it.
func (g *G) Line(line int) { g.stk.SetLine(line) }

// Call runs body inside a pushed frame, popping it on the way out
// (including on abort-unwind).
func (g *G) Call(fn, file string, line int, body func()) {
	g.Push(fn, file, line)
	defer g.Pop()
	body()
}

// Yield voluntarily inserts a scheduling point with no event, useful to
// model pure computation between instrumented operations.
func (g *G) Yield() { g.point() }
