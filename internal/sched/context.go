package sched

// Context models context.Context as the §4.6 patterns use it:
// "Contexts in Go carry deadlines, cancelation signals, and other
// request-scoped values across API boundaries... This is a common
// pattern in microservices where timelines are set for tasks."
//
// The model provides the cancellation half: Done() is a channel that
// closes on cancel, Err() reports the cancellation, and WithTimeout
// schedules an asynchronous canceller (a modeled goroutine that
// cancels after a given number of scheduling points — logical time,
// since the modeled runtime has no wall clock).
type Context struct {
	s      *Scheduler
	name   string
	done   *Chan[int]
	err    string
	parent *Context
}

// Background returns a root context that is never cancelled.
func Background(g *G) *Context {
	return &Context{s: g.s, name: "background", done: NewChan[int](g, "ctx.bg.Done", 0)}
}

// WithCancel derives a cancellable context; cancel is idempotent.
func (c *Context) WithCancel(g *G, name string) (*Context, func(*G)) {
	child := &Context{
		s: c.s, name: name, parent: c,
		done: NewChan[int](g, "ctx."+name+".Done", 0),
	}
	cancelled := false
	cancel := func(g *G) {
		if cancelled {
			return
		}
		cancelled = true
		child.errIfUnset("context canceled")
		child.done.Close(g)
	}
	return child, cancel
}

// WithTimeout derives a context that cancels itself after `points`
// scheduling points of logical delay, via an asynchronous timer
// goroutine — the modeled analogue of a deadline firing.
func (c *Context) WithTimeout(g *G, name string, points int) *Context {
	child, cancel := c.WithCancel(g, name)
	child.err = "" // set at fire time
	g.Go("ctx."+name+".timer", func(g *G) {
		for i := 0; i < points; i++ {
			g.Yield()
		}
		child.errIfUnset("context deadline exceeded")
		cancel(g)
	})
	return child
}

func (c *Context) errIfUnset(msg string) {
	if c.err == "" {
		c.err = msg
	}
}

// Done returns the cancellation channel, for use in Select arms.
func (c *Context) Done() *Chan[int] { return c.done }

// Err returns the cancellation cause, empty while the context lives.
// Reading Err is not itself an instrumented access (context.Context
// implementations synchronize internally).
func (c *Context) Err(g *G) string {
	g.point()
	return c.err
}

// OnDone builds a Select arm that fires when the context is cancelled.
func (c *Context) OnDone(fn func()) SelectCase {
	return OnRecv(c.done, func(int, bool) {
		if fn != nil {
			fn()
		}
	})
}

// Name returns the diagnostic name.
func (c *Context) Name() string { return c.name }
