package sched

import "gorace/internal/trace"

// Chan models a Go channel with the happens-before semantics of the Go
// memory model:
//
//   - a send happens before the completion of the corresponding receive;
//   - for unbuffered channels, a receive happens before the completion
//     of the corresponding send (modeled with a second rendezvous object);
//   - for buffered channels of capacity C, the k-th receive happens
//     before the (k+C)-th send completes (modeled with per-slot objects);
//   - a close happens before a receive that returns a zero value.
//
// Like the Go runtime's race instrumentation, the rendezvous objects
// are per-channel (and per-slot), which slightly over-approximates the
// pairwise edges of the formal memory model — matching what the
// deployed detector actually observes.
type Chan[T any] struct {
	s                    *Scheduler
	name                 string
	capacity             int
	buf                  []T
	closed               bool
	sendObj, recvObj     trace.ObjID
	slotObjs             []trace.ObjID
	closeObj             trace.ObjID
	sendCount, recvCount uint64
	sendq                []*sendWaiter[T]
	recvq                []*recvWaiter[T]
}

type sendWaiter[T any] struct {
	g    *G
	val  T
	done bool
}

type recvWaiter[T any] struct {
	g    *G
	val  T
	ok   bool
	done bool
}

// NewChan allocates a modeled channel with the given capacity.
func NewChan[T any](g *G, name string, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	c := &Chan[T]{
		s:        g.s,
		name:     name,
		capacity: capacity,
		sendObj:  g.s.objFor(g),
		recvObj:  g.s.objFor(g),
		closeObj: g.s.objFor(g),
	}
	for i := 0; i < capacity; i++ {
		c.slotObjs = append(c.slotObjs, g.s.objFor(g))
	}
	return c
}

// Name returns the diagnostic name.
func (c *Chan[T]) Name() string { return c.name }

// Cap returns the modeled capacity.
func (c *Chan[T]) Cap() int { return c.capacity }

// Len returns the number of buffered values (no event; diagnostic).
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send models `c <- v`.
func (c *Chan[T]) Send(g *G, v T) {
	g.point()
	if c.closed {
		c.s.fail(g, "send on closed channel %s", c.name)
		return
	}
	if c.capacity > 0 {
		for len(c.buf) >= c.capacity {
			g.block("chan send " + c.name)
			if c.closed {
				c.s.fail(g, "send on closed channel %s", c.name)
				return
			}
		}
		c.pushBuf(g, v)
		return
	}
	// Unbuffered: complete a parked receiver, or park ourselves.
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok, w.done = v, true, true
		c.rendezvous(g, w.g)
		c.s.wake(w.g)
		return
	}
	w := &sendWaiter[T]{g: g, val: v}
	c.sendq = append(c.sendq, w)
	c.s.wakePollers()
	for !w.done {
		g.block("chan send " + c.name)
	}
}

// Recv models `v, ok := <-c`.
func (c *Chan[T]) Recv(g *G) (T, bool) {
	g.point()
	var zero T
	if c.capacity > 0 {
		for len(c.buf) == 0 {
			if c.closed {
				c.acquireClose(g)
				return zero, false
			}
			g.block("chan recv " + c.name)
		}
		return c.popBuf(g), true
	}
	// Unbuffered: complete a parked sender, or park ourselves.
	if len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		w.done = true
		c.rendezvous(w.g, g)
		c.s.wake(w.g)
		return w.val, true
	}
	if c.closed {
		c.acquireClose(g)
		return zero, false
	}
	w := &recvWaiter[T]{g: g}
	c.recvq = append(c.recvq, w)
	c.s.wakePollers()
	for !w.done {
		g.block("chan recv " + c.name)
	}
	return w.val, w.ok
}

// Close models `close(c)`.
func (c *Chan[T]) Close(g *G) {
	g.point()
	if c.closed {
		c.s.fail(g, "close of closed channel %s", c.name)
		return
	}
	c.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: c.closeObj, Kind: trace.KindChan, Label: c.name + ".close"})
	c.closed = true
	// Complete every parked receiver with the zero value.
	for _, w := range c.recvq {
		w.done, w.ok = true, false
		c.acquireClose(w.g)
		c.s.wake(w.g)
	}
	c.recvq = nil
	// Parked senders hit "send on closed channel".
	for _, w := range c.sendq {
		w.done = true
		c.s.fail(w.g, "send on closed channel %s", c.name)
		c.s.wake(w.g)
	}
	c.sendq = nil
	c.s.wakeAllBlocked()
	c.s.wakePollers()
}

// pushBuf appends to the buffer with per-slot happens-before edges.
func (c *Chan[T]) pushBuf(g *G, v T) {
	slot := c.slotObjs[c.sendCount%uint64(c.capacity)]
	// Edge from the receive that freed this slot (capacity back-pressure).
	c.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: slot, Kind: trace.KindChan, Label: c.name})
	// Edge to the receive of this value.
	c.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: slot, Kind: trace.KindChan, Label: c.name})
	c.sendCount++
	c.buf = append(c.buf, v)
	c.s.wakeAllBlocked()
	c.s.wakePollers()
}

// popBuf removes the head of the buffer with per-slot edges.
func (c *Chan[T]) popBuf(g *G) T {
	slot := c.slotObjs[c.recvCount%uint64(c.capacity)]
	c.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: slot, Kind: trace.KindChan, Label: c.name})
	c.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: slot, Kind: trace.KindChan, Label: c.name})
	c.recvCount++
	v := c.buf[0]
	c.buf = c.buf[1:]
	c.s.wakeAllBlocked()
	c.s.wakePollers()
	return v
}

// rendezvous emits the two-way unbuffered exchange between a sender
// and a receiver. Events attributed to a parked goroutine are sound:
// its clock cannot have advanced while parked.
func (c *Chan[T]) rendezvous(sender, receiver *G) {
	c.s.emit(sender, trace.Event{Op: trace.OpRelease, Obj: c.sendObj, Kind: trace.KindChan, Label: c.name})
	c.s.emit(receiver, trace.Event{Op: trace.OpAcquire, Obj: c.sendObj, Kind: trace.KindChan, Label: c.name})
	c.s.emit(receiver, trace.Event{Op: trace.OpRelease, Obj: c.recvObj, Kind: trace.KindChan, Label: c.name})
	c.s.emit(sender, trace.Event{Op: trace.OpAcquire, Obj: c.recvObj, Kind: trace.KindChan, Label: c.name})
}

func (c *Chan[T]) acquireClose(g *G) {
	c.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: c.closeObj, Kind: trace.KindChan, Label: c.name + ".close"})
}

// recvReady reports whether a receive would complete without blocking.
func (c *Chan[T]) recvReady() bool {
	if c.capacity > 0 {
		return len(c.buf) > 0 || c.closed
	}
	return len(c.sendq) > 0 || c.closed
}

// sendReady reports whether a send would complete without blocking.
// A send on a closed channel is "ready" (it would panic immediately).
func (c *Chan[T]) sendReady() bool {
	if c.closed {
		return true
	}
	if c.capacity > 0 {
		return len(c.buf) < c.capacity
	}
	return len(c.recvq) > 0
}

// execRecv performs a non-blocking receive; requires recvReady().
func (c *Chan[T]) execRecv(g *G) (T, bool) {
	var zero T
	if c.capacity > 0 {
		if len(c.buf) > 0 {
			return c.popBuf(g), true
		}
		c.acquireClose(g)
		return zero, false
	}
	if len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		w.done = true
		c.rendezvous(w.g, g)
		c.s.wake(w.g)
		return w.val, true
	}
	c.acquireClose(g)
	return zero, false
}

// execSend performs a non-blocking send; requires sendReady().
func (c *Chan[T]) execSend(g *G, v T) {
	if c.closed {
		c.s.fail(g, "send on closed channel %s", c.name)
		return
	}
	if c.capacity > 0 {
		c.pushBuf(g, v)
		return
	}
	w := c.recvq[0]
	c.recvq = c.recvq[1:]
	w.val, w.ok, w.done = v, true, true
	c.rendezvous(g, w.g)
	c.s.wake(w.g)
}
