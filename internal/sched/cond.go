package sched

import "gorace/internal/trace"

// Cond models sync.Cond: a condition variable bound to a Mutex (or an
// RWMutex's write side via its Locker adapter). Wait atomically
// releases the lock, parks, and re-acquires on wakeup; Signal wakes
// one waiter, Broadcast wakes all.
//
// Happens-before: waking travels through the associated lock — the
// signaler mutated state under the mutex, released it, and the woken
// waiter re-acquires it, which is exactly how sync.Cond programs are
// ordered in real Go (Signal itself carries no HB edge to the waiter;
// TSan orders such programs through the mutex too).
type Cond struct {
	s       *Scheduler
	name    string
	l       *Mutex
	waiters []*condWaiter
	gen     uint64
}

type condWaiter struct {
	g     *G
	woken bool
}

// NewCond allocates a condition variable bound to l.
func NewCond(g *G, name string, l *Mutex) *Cond {
	return &Cond{s: g.s, name: name, l: l}
}

// Wait releases the lock, parks until woken, and re-acquires the lock.
// Calling Wait without holding the lock is recorded as a model failure
// (real Go panics "sync: unlock of unlocked mutex" inside Wait).
func (c *Cond) Wait(g *G) {
	g.point()
	if !c.l.held || c.l.owner != g {
		c.s.fail(g, "cond %s: Wait without holding the lock", c.name)
		return
	}
	w := &condWaiter{g: g}
	c.waiters = append(c.waiters, w)
	// Atomically release the lock and park: emit the release edge
	// before parking so the next locker sees everything we did.
	c.s.emit(g, trace.Event{Op: trace.OpRelease, Obj: c.l.id, Kind: trace.KindMutex, Label: c.l.name})
	c.l.held = false
	c.l.owner = nil
	c.s.wakeAllBlocked()
	for !w.woken {
		g.block("cond " + c.name)
	}
	// Re-acquire the lock (blocking path, same as Mutex.Lock but
	// without an extra scheduling point before the wait loop).
	for c.l.held {
		g.block("mutex " + c.l.name)
	}
	c.l.held = true
	c.l.owner = g
	c.s.emit(g, trace.Event{Op: trace.OpAcquire, Obj: c.l.id, Kind: trace.KindMutex, Label: c.l.name})
}

// Signal wakes one waiter, if any. The caller need not hold the lock
// (as in real Go), but well-ordered programs usually do.
func (c *Cond) Signal(g *G) {
	g.point()
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.woken = true
	c.s.wake(w.g)
}

// Broadcast wakes every current waiter.
func (c *Cond) Broadcast(g *G) {
	g.point()
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.woken = true
		c.s.wake(w.g)
	}
}

// WaiterCount reports parked waiters (diagnostic; no event).
func (c *Cond) WaiterCount() int { return len(c.waiters) }
