package sched

import "gorace/internal/trace"

// Var is an instrumented scalar variable: every Load/Store is a
// scheduling point and emits a read/write event on the variable's
// shadow cell. Var models ordinary Go variables shared across
// goroutines — including closure-captured free variables, the paper's
// Observation 3 (transparent capture-by-reference).
type Var[T any] struct {
	s    *Scheduler
	addr trace.Addr
	name string
	val  T
}

// NewVar allocates an instrumented variable. The name labels events
// and race reports ("err", "result", "job").
func NewVar[T any](g *G, name string) *Var[T] {
	return &Var[T]{s: g.s, addr: g.s.addrFor(g), name: name}
}

// NewVarOf allocates an instrumented variable with an initial value,
// without emitting a write (declaration-time initialization is not an
// access visible to other goroutines yet).
func NewVarOf[T any](g *G, name string, init T) *Var[T] {
	v := NewVar[T](g, name)
	v.val = init
	return v
}

// Addr exposes the shadow cell, for tests and classifiers.
func (v *Var[T]) Addr() trace.Addr { return v.addr }

// Name returns the diagnostic name.
func (v *Var[T]) Name() string { return v.name }

// Load reads the variable.
func (v *Var[T]) Load(g *G) T {
	g.point()
	g.s.emit(g, trace.Event{Op: trace.OpRead, Addr: v.addr, Label: v.name})
	return v.val
}

// Store writes the variable.
func (v *Var[T]) Store(g *G, val T) {
	g.point()
	g.s.emit(g, trace.Event{Op: trace.OpWrite, Addr: v.addr, Label: v.name})
	v.val = val
}

// Update applies f to the current value and stores the result. It is a
// read-modify-write of two accesses (one read, one write) with a
// scheduling point between them, so it is every bit as racy as
// `x = f(x)` in real Go.
func (v *Var[T]) Update(g *G, f func(T) T) {
	old := v.Load(g)
	v.Store(g, f(old))
}
