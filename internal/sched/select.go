package sched

// SelectCase is one arm of a modeled select statement. Build arms with
// OnRecv, OnSend, and Default.
type SelectCase interface {
	ready() bool
	exec(g *G)
	isDefault() bool
	desc() string
}

type recvCase[T any] struct {
	c  *Chan[T]
	fn func(v T, ok bool)
}

func (rc recvCase[T]) ready() bool     { return rc.c.recvReady() }
func (rc recvCase[T]) isDefault() bool { return false }
func (rc recvCase[T]) desc() string    { return "<-" + rc.c.name }
func (rc recvCase[T]) exec(g *G) {
	v, ok := rc.c.execRecv(g)
	if rc.fn != nil {
		rc.fn(v, ok)
	}
}

type sendCase[T any] struct {
	c  *Chan[T]
	v  T
	fn func()
}

func (sc sendCase[T]) ready() bool     { return sc.c.sendReady() }
func (sc sendCase[T]) isDefault() bool { return false }
func (sc sendCase[T]) desc() string    { return sc.c.name + "<-" }
func (sc sendCase[T]) exec(g *G) {
	sc.c.execSend(g, sc.v)
	if sc.fn != nil {
		sc.fn()
	}
}

type defaultCase struct{ fn func() }

func (dc defaultCase) ready() bool     { return true }
func (dc defaultCase) isDefault() bool { return true }
func (dc defaultCase) desc() string    { return "default" }
func (dc defaultCase) exec(g *G) {
	if dc.fn != nil {
		dc.fn()
	}
}

// OnRecv builds a receive arm; fn runs with the received value.
func OnRecv[T any](c *Chan[T], fn func(v T, ok bool)) SelectCase {
	return recvCase[T]{c: c, fn: fn}
}

// OnSend builds a send arm; fn runs after the send completes.
func OnSend[T any](c *Chan[T], v T, fn func()) SelectCase {
	return sendCase[T]{c: c, v: v, fn: fn}
}

// Default builds a default arm, making the select non-blocking.
func Default(fn func()) SelectCase { return defaultCase{fn: fn} }

// Select models a select statement: it blocks until at least one arm
// is ready and executes one ready arm, chosen by the run's Strategy
// (mirroring Go's pseudo-random arm choice, §4.6 footnote). It returns
// the index of the executed arm.
//
// Modeling note: a send arm on an unbuffered channel is considered
// ready only when a receiver is already committed (parked); two selects
// attempting opposite directions on the same unbuffered channel would
// both poll. The corpus does not need that pairing.
func (g *G) Select(cases ...SelectCase) int {
	g.point()
	if len(cases) == 0 {
		g.block("select{}") // blocks forever, like real Go
		return -1
	}
	defIdx := -1
	for i, c := range cases {
		if c.isDefault() {
			defIdx = i
		}
	}
	for {
		var ready []int
		for i, c := range cases {
			if !c.isDefault() && c.ready() {
				ready = append(ready, i)
			}
		}
		if len(ready) > 0 {
			pick := g.s.strategy.Choose(len(ready), g.s.rng)
			if pick < 0 || pick >= len(ready) {
				pick = 0
			}
			idx := ready[pick]
			cases[idx].exec(g)
			return idx
		}
		if defIdx >= 0 {
			cases[defIdx].exec(g)
			return defIdx
		}
		g.s.pollers = append(g.s.pollers, g)
		g.block("select")
	}
}
