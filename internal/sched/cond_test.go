package sched

import (
	"testing"

	"gorace/internal/trace"
)

func TestCondSignalWakesOneWaiter(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		var served int
		res, _ := run(t, Options{Strategy: NewRandom(), Seed: seed}, func(g *G) {
			mu := NewMutex(g, "mu")
			cond := NewCond(g, "cond", mu)
			queue := 0
			wg := NewWaitGroup(g, "wg")
			wg.Add(g, 1)
			g.Go("consumer", func(g *G) {
				mu.Lock(g)
				for queue == 0 {
					cond.Wait(g)
				}
				queue--
				served++
				mu.Unlock(g)
				wg.Done(g)
			})
			mu.Lock(g)
			queue++
			mu.Unlock(g)
			cond.Signal(g)
			wg.Wait(g)
		})
		if served != 1 {
			t.Fatalf("seed %d: served = %d", seed, served)
		}
		if res.Deadlocked() || len(res.Failures) > 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		woken := 0
		res, _ := run(t, Options{Strategy: NewRandom(), Seed: seed}, func(g *G) {
			mu := NewMutex(g, "mu")
			cond := NewCond(g, "cond", mu)
			ready := false
			wg := NewWaitGroup(g, "wg")
			for i := 0; i < 3; i++ {
				wg.Add(g, 1)
				g.Go("waiter", func(g *G) {
					mu.Lock(g)
					for !ready {
						cond.Wait(g)
					}
					woken++
					mu.Unlock(g)
					wg.Done(g)
				})
			}
			mu.Lock(g)
			ready = true
			mu.Unlock(g)
			cond.Broadcast(g)
			// Late waiters that never parked still see ready==true.
			wg.Wait(g)
		})
		if woken != 3 {
			t.Fatalf("seed %d: woken = %d", seed, woken)
		}
		if res.Deadlocked() || len(res.Failures) > 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestCondWaitWithoutLockFails(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		mu := NewMutex(g, "mu")
		cond := NewCond(g, "cond", mu)
		cond.Wait(g)
	})
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestCondSignalNoWaitersIsNoop(t *testing.T) {
	res, _ := run(t, Options{}, func(g *G) {
		mu := NewMutex(g, "mu")
		cond := NewCond(g, "cond", mu)
		cond.Signal(g)
		cond.Broadcast(g)
		if cond.WaiterCount() != 0 {
			t.Error("phantom waiters")
		}
	})
	if len(res.Failures) != 0 || res.Deadlocked() {
		t.Fatalf("%+v", res)
	}
}

func TestCondHBOrdersThroughMutex(t *testing.T) {
	// Data written before Signal under the lock must be ordered with
	// the waiter's read after Wait returns — through the mutex edges.
	// Verified by running the detector-equivalent check: record the
	// trace and assert release/acquire pairs bracket the wait.
	res, rec := run(t, Options{Strategy: NewRoundRobin()}, func(g *G) {
		mu := NewMutex(g, "mu")
		cond := NewCond(g, "cond", mu)
		data := NewVar[int](g, "data")
		ready := false
		wg := NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("waiter", func(g *G) {
			mu.Lock(g)
			for !ready {
				cond.Wait(g)
			}
			data.Load(g)
			mu.Unlock(g)
			wg.Done(g)
		})
		// Let the waiter park inside Wait before signaling, so the
		// release/park/re-acquire path actually executes.
		for cond.WaiterCount() == 0 {
			g.Yield()
		}
		mu.Lock(g)
		ready = true
		data.Store(g, 1)
		mu.Unlock(g)
		cond.Signal(g)
		wg.Wait(g)
	})
	if res.Deadlocked() {
		t.Fatalf("deadlock: %+v", res.Leaked)
	}
	var acquires, releases int
	for _, ev := range rec.Events {
		if ev.Kind == trace.KindMutex {
			switch ev.Op {
			case trace.OpAcquire:
				acquires++
			case trace.OpRelease:
				releases++
			}
		}
	}
	if acquires != releases || acquires < 3 {
		t.Fatalf("unbalanced mutex edges: %d acquires, %d releases", acquires, releases)
	}
}
