#!/usr/bin/env bash
# doccheck.sh — fail when a package or exported identifier under
# internal/ or cmd/ lacks a doc comment. CI runs this as a
# non-blocking step; run it locally before sending a PR:
#
#   scripts/doccheck.sh
#
# The actual checker is the Go program in scripts/doccheck, which
# parses the source with go/ast (no deps beyond the stdlib).
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./scripts/doccheck internal cmd
