#!/usr/bin/env bash
# doccheck.sh — fail when a package or exported identifier under
# internal/ or cmd/ lacks a doc comment, when docs/CLI.md has gone
# stale against the commands under cmd/, when docs/DETECTORS.md no
# longer covers every registered detector and exported Stats field, or
# when docs/STREAMING.md or docs/GENERATION.md no longer covers every
# internal/stream or internal/racegen export.
# CI runs this as a blocking step; run it locally before sending a PR:
#
#   scripts/doccheck.sh
#
# The actual checker is the Go program in scripts/doccheck, which
# parses the source with go/ast (no deps beyond the stdlib).
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./scripts/doccheck -clidoc docs/CLI.md -cmds cmd \
	-detdoc docs/DETECTORS.md -detsrc internal/detector \
	-pkgdoc docs/STREAMING.md:internal/stream \
	-pkgdoc docs/GENERATION.md:internal/racegen \
	internal cmd
