#!/usr/bin/env bash
# benchdiff.sh OLD NEW — compare two `go test -bench` outputs and fail
# when any benchmark's allocs/op regressed by more than 20% (or went
# from zero to nonzero). Benchmarks without a ReportAllocs column, or
# present in only one file, are skipped.
#
# Usage:
#   go test -bench . -benchtime 100x -run '^$' . > new.txt
#   scripts/benchdiff.sh scripts/bench-baseline.txt new.txt
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <old-bench-output> <new-bench-output>" >&2
  exit 2
fi

awk -v threshold=1.20 '
  FNR == 1 { file++ }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    allocs = -1
    for (i = 2; i <= NF; i++) {
      if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (allocs < 0) next
    if (file == 1) old[name] = allocs
    else           new[name] = allocs
  }
  END {
    status = 0
    compared = 0
    for (n in new) {
      if (!(n in old)) continue
      compared++
      o = old[n] + 0
      w = new[n] + 0
      if ((o == 0 && w > 0) || (o > 0 && w > o * threshold)) {
        printf "REGRESSION  %-40s allocs/op %8d -> %8d\n", n, o, w
        status = 1
      } else {
        printf "ok          %-40s allocs/op %8d -> %8d\n", n, o, w
      }
    }
    if (compared == 0) {
      print "benchdiff: no comparable benchmarks (ReportAllocs missing?)" > "/dev/stderr"
      exit 2
    }
    exit status
  }
' "$1" "$2"
