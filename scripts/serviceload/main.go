// Command serviceload is the CI load generator for raced: it fires N
// concurrent clients at a running instance, each mixing corpus reads
// (stats, listings, diffs, replays) with job submits and status
// polls, and reports request counts plus p50/p95/p99 latency. CI runs
// it against a race-detector build of raced, so the soak doubles as a
// -race pass over the live service.
//
// Connections are pooled and kept alive (one transport, idle pool
// sized to the client count), so the measured latencies are request
// costs, not TCP handshakes.
//
// Usage:
//
//	go run ./scripts/serviceload -addr http://127.0.0.1:8077 \
//	    [-clients 64] [-requests 25] [-timeout 30s]
//
// Distributed mode: -addrs takes a comma-separated node list — the
// coordinator first, then replicas. Reads spread over all nodes
// round-robin (replicas serve the same snapshots), submits go to the
// coordinator, and the report breaks requests out per node on top of
// the fleet-wide aggregate:
//
//	go run ./scripts/serviceload \
//	    -addrs http://coord:8077,http://w1:8078,http://w2:8079
//
// Exit status is non-zero when any request errors or returns an
// unexpected status (429 on submits is expected backpressure, not a
// failure).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// sample is one completed request's latency, tagged with the node that
// served it.
type sample struct {
	node string
	path string
	d    time.Duration
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8077", "base URL of the raced instance")
		addrs    = flag.String("addrs", "", "comma-separated node URLs, coordinator first (overrides -addr; reads round-robin over all nodes)")
		clients  = flag.Int("clients", 64, "concurrent clients")
		requests = flag.Int("requests", 25, "requests per client")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	nodes := []string{*addr}
	if *addrs != "" {
		nodes = nodes[:0]
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				nodes = append(nodes, strings.TrimRight(a, "/"))
			}
		}
		if len(nodes) == 0 {
			fmt.Fprintln(os.Stderr, "serviceload: -addrs has no usable URLs")
			os.Exit(2)
		}
	}
	coordinator := nodes[0]

	// One pooled transport for the whole run: keep-alive across all
	// clients and nodes, idle pool sized so no client ever redials.
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *clients * len(nodes),
			MaxIdleConnsPerHost: *clients,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	// Discover a real race key so the by-key and replay endpoints get
	// genuine traffic. Discovery goes to the coordinator: replicas
	// serve the same snapshot.
	raceKey, replayable := discover(client, coordinator)
	paths := []string{
		"/healthz",
		"/v1/stats",
		"/v1/races?limit=0",
		"/v1/races?sort=count&limit=5",
		"/v1/diff",
		"/v1/jobs",
	}
	if a, b := runPair(client, coordinator); a != "" {
		paths[4] = fmt.Sprintf("/v1/diff?a=%s&b=%s", a, b)
	} else {
		paths[4] = "/v1/stats" // single-run store: nothing to diff
	}
	if raceKey != "" {
		paths = append(paths, "/v1/races/"+raceKey)
	}
	if replayable != "" && len(nodes) == 1 {
		// Replays open the trace file server-side; replicas don't have
		// the coordinator's trace files on disk.
		paths = append(paths, "/v1/replay/"+replayable)
	}
	jobSpec := []byte(`{"patterns":["capture-loop-index"],"strategies":["random"],"seeds":3}`)

	var (
		mu       sync.Mutex
		samples  []sample
		failures atomic.Int64
		accepted atomic.Int64
		backoff  atomic.Int64
	)
	record := func(node, path string, d time.Duration) {
		mu.Lock()
		samples = append(samples, sample{node, path, d})
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < *requests; i++ {
				if (c+i)%10 == 9 {
					t0 := time.Now()
					resp, err := client.Post(coordinator+"/v1/jobs", "application/json", bytes.NewReader(jobSpec))
					if err != nil {
						fmt.Fprintf(os.Stderr, "client %d: submit: %v\n", c, err)
						failures.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						accepted.Add(1)
						record(coordinator, "POST /v1/jobs", time.Since(t0))
					case http.StatusTooManyRequests:
						backoff.Add(1) // expected backpressure
						record(coordinator, "POST /v1/jobs", time.Since(t0))
					default:
						// Failures stay out of the ok count and the
						// latency percentiles.
						fmt.Fprintf(os.Stderr, "client %d: submit status %d\n", c, resp.StatusCode)
						failures.Add(1)
					}
					continue
				}
				node := nodes[(c+i)%len(nodes)]
				path := paths[(c*13+i)%len(paths)]
				if strings.HasPrefix(path, "/v1/jobs") {
					// The jobs table lives on the coordinator; worker
					// nodes answer it 503 by design.
					node = coordinator
				}
				t0 := time.Now()
				resp, err := client.Get(node + path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "client %d: GET %s%s: %v\n", c, node, path, err)
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fmt.Fprintf(os.Stderr, "client %d: GET %s%s = %d\n", c, node, path, resp.StatusCode)
					failures.Add(1)
					continue
				}
				record(node, "GET "+path, time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lat := make([]time.Duration, len(samples))
	perNode := make(map[string][]time.Duration, len(nodes))
	for i, s := range samples {
		lat[i] = s.d
		perNode[s.node] = append(perNode[s.node], s.d)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	fmt.Printf("serviceload: %d clients x %d requests against %s\n",
		*clients, *requests, strings.Join(nodes, ", "))
	fmt.Printf("requests: %d ok in %s (%.0f req/s), %d failures\n",
		len(samples), elapsed.Round(time.Millisecond),
		float64(len(samples))/elapsed.Seconds(), failures.Load())
	fmt.Printf("jobs: %d accepted, %d pushed back (429)\n", accepted.Load(), backoff.Load())
	if len(lat) > 0 {
		fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
			pct(lat, 50), pct(lat, 95), pct(lat, 99), lat[len(lat)-1].Round(time.Microsecond))
	}
	if len(nodes) > 1 {
		for _, n := range nodes {
			nl := perNode[n]
			sort.Slice(nl, func(i, j int) bool { return nl[i] < nl[j] })
			fmt.Printf("node %s: %d ok, p50=%s p95=%s\n", n, len(nl), pct(nl, 50), pct(nl, 95))
		}
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// pct returns the p'th latency percentile (nearest-rank).
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx].Round(time.Microsecond)
}

// discover pulls one defect key (and one replayable key, if any trace
// was retained) off /v1/races.
func discover(client *http.Client, addr string) (key, replayable string) {
	resp, err := client.Get(addr + "/v1/races?limit=0")
	if err != nil {
		return "", ""
	}
	defer resp.Body.Close()
	var body struct {
		Races []struct {
			Key      string `json:"key"`
			HasTrace bool   `json:"hasTrace"`
		} `json:"races"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", ""
	}
	for _, r := range body.Races {
		if key == "" {
			key = r.Key
		}
		if replayable == "" && r.HasTrace {
			replayable = r.Key
		}
	}
	return key, replayable
}

// runPair pulls the first and last recorded run ids for a diff query.
func runPair(client *http.Client, addr string) (a, b string) {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return "", ""
	}
	defer resp.Body.Close()
	var body struct {
		RunHistory []struct {
			ID string `json:"id"`
		} `json:"runHistory"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", ""
	}
	if len(body.RunHistory) < 2 {
		return "", ""
	}
	return body.RunHistory[0].ID, body.RunHistory[len(body.RunHistory)-1].ID
}
