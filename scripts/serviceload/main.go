// Command serviceload is the CI load generator for raced: it fires N
// concurrent clients at a running instance, each mixing corpus reads
// (stats, listings, diffs, replays) with job submits and status
// polls, and reports request counts plus p50/p95/p99 latency. CI runs
// it against a race-detector build of raced, so the soak doubles as a
// -race pass over the live service.
//
// Usage:
//
//	go run ./scripts/serviceload -addr http://127.0.0.1:8077 \
//	    [-clients 64] [-requests 25] [-timeout 30s]
//
// Exit status is non-zero when any request errors or returns an
// unexpected status (429 on submits is expected backpressure, not a
// failure).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// sample is one completed request's latency.
type sample struct {
	path string
	d    time.Duration
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8077", "base URL of the raced instance")
		clients  = flag.Int("clients", 64, "concurrent clients")
		requests = flag.Int("requests", 25, "requests per client")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}

	// Discover a real race key so the by-key and replay endpoints get
	// genuine traffic.
	raceKey, replayable := discover(client, *addr)
	paths := []string{
		"/healthz",
		"/v1/stats",
		"/v1/races?limit=0",
		"/v1/races?sort=count&limit=5",
		"/v1/diff",
		"/v1/jobs",
	}
	if a, b := runPair(client, *addr); a != "" {
		paths[4] = fmt.Sprintf("/v1/diff?a=%s&b=%s", a, b)
	} else {
		paths[4] = "/v1/stats" // single-run store: nothing to diff
	}
	if raceKey != "" {
		paths = append(paths, "/v1/races/"+raceKey)
	}
	if replayable != "" {
		paths = append(paths, "/v1/replay/"+replayable)
	}
	jobSpec := []byte(`{"patterns":["capture-loop-index"],"strategies":["random"],"seeds":3}`)

	var (
		mu       sync.Mutex
		samples  []sample
		failures atomic.Int64
		accepted atomic.Int64
		backoff  atomic.Int64
	)
	record := func(path string, d time.Duration) {
		mu.Lock()
		samples = append(samples, sample{path, d})
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < *requests; i++ {
				if (c+i)%10 == 9 {
					t0 := time.Now()
					resp, err := client.Post(*addr+"/v1/jobs", "application/json", bytes.NewReader(jobSpec))
					if err != nil {
						fmt.Fprintf(os.Stderr, "client %d: submit: %v\n", c, err)
						failures.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						accepted.Add(1)
						record("POST /v1/jobs", time.Since(t0))
					case http.StatusTooManyRequests:
						backoff.Add(1) // expected backpressure
						record("POST /v1/jobs", time.Since(t0))
					default:
						// Failures stay out of the ok count and the
						// latency percentiles.
						fmt.Fprintf(os.Stderr, "client %d: submit status %d\n", c, resp.StatusCode)
						failures.Add(1)
					}
					continue
				}
				path := paths[(c*13+i)%len(paths)]
				t0 := time.Now()
				resp, err := client.Get(*addr + path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "client %d: GET %s: %v\n", c, path, err)
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fmt.Fprintf(os.Stderr, "client %d: GET %s = %d\n", c, path, resp.StatusCode)
					failures.Add(1)
					continue
				}
				record("GET "+path, time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lat := make([]time.Duration, len(samples))
	for i, s := range samples {
		lat[i] = s.d
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	fmt.Printf("serviceload: %d clients x %d requests against %s\n", *clients, *requests, *addr)
	fmt.Printf("requests: %d ok in %s (%.0f req/s), %d failures\n",
		len(samples), elapsed.Round(time.Millisecond),
		float64(len(samples))/elapsed.Seconds(), failures.Load())
	fmt.Printf("jobs: %d accepted, %d pushed back (429)\n", accepted.Load(), backoff.Load())
	if len(lat) > 0 {
		fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
			pct(lat, 50), pct(lat, 95), pct(lat, 99), lat[len(lat)-1].Round(time.Microsecond))
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// pct returns the p'th latency percentile (nearest-rank).
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx].Round(time.Microsecond)
}

// discover pulls one defect key (and one replayable key, if any trace
// was retained) off /v1/races.
func discover(client *http.Client, addr string) (key, replayable string) {
	resp, err := client.Get(addr + "/v1/races?limit=0")
	if err != nil {
		return "", ""
	}
	defer resp.Body.Close()
	var body struct {
		Races []struct {
			Key      string `json:"key"`
			HasTrace bool   `json:"hasTrace"`
		} `json:"races"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", ""
	}
	for _, r := range body.Races {
		if key == "" {
			key = r.Key
		}
		if replayable == "" && r.HasTrace {
			replayable = r.Key
		}
	}
	return key, replayable
}

// runPair pulls the first and last recorded run ids for a diff query.
func runPair(client *http.Client, addr string) (a, b string) {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return "", ""
	}
	defer resp.Body.Close()
	var body struct {
		RunHistory []struct {
			ID string `json:"id"`
		} `json:"runHistory"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", ""
	}
	if len(body.RunHistory) < 2 {
		return "", ""
	}
	return body.RunHistory[0].ID, body.RunHistory[len(body.RunHistory)-1].ID
}
