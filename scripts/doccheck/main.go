// Command doccheck enforces the repo's documentation bar: every
// package and every exported identifier under the given directory
// trees must carry a doc comment. scripts/doccheck.sh runs it over
// internal/ and cmd/; CI runs that script as a blocking step.
//
// An exported identifier (top-level function, method, type, const,
// var) counts as documented if it has its own doc comment, inherits
// one from its enclosing const/var/type block, or carries a trailing
// line comment (the idiomatic form inside grouped const blocks).
// Methods are checked only on exported receiver types; struct fields
// follow the surrounding struct's doc and are not checked. Test files
// are skipped.
//
// With -clidoc, doccheck additionally cross-checks the CLI reference
// against the commands that actually exist: every directory under
// -cmds must have a "## <name>" section and a command-table row in
// the given markdown file, and every "## <name>" section must name a
// real command — so docs/CLI.md cannot silently go stale when a
// command is added or removed. Flags are covered too: every flag a
// command registers (package-level flag.String/Bool/... calls) must
// appear backticked (`-name`) inside that command's section, so a new
// flag cannot ship undocumented. Subcommand flag.NewFlagSet flags are
// out of scope — they are documented per-subcommand.
//
// With -detdoc, doccheck cross-checks the detector design reference
// the same way: every detector name registered in -detsrc (the string
// literals passed to Register) and every exported field of the
// detector Stats struct must appear backticked in the given markdown
// file — so docs/DETECTORS.md cannot silently go stale when a
// detector or counter is added.
//
// With -pkgdoc (a doc.md:srcdir pair, repeatable), doccheck
// cross-checks a package reference against the package itself: every
// exported top-level identifier (function, type, const, var) of the
// source directory must appear backticked in the markdown file — so a
// new export cannot ship without its reference doc catching up.
// scripts/doccheck.sh pins docs/STREAMING.md to internal/stream this
// way.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// violation is one undocumented package or identifier.
type violation struct {
	pos  token.Position
	what string
}

func main() {
	cliDoc := flag.String("clidoc", "", "markdown CLI reference to cross-check against -cmds (e.g. docs/CLI.md)")
	cmds := flag.String("cmds", "cmd", "command tree the -clidoc reference must cover")
	detDoc := flag.String("detdoc", "", "markdown detector reference to cross-check against -detsrc (e.g. docs/DETECTORS.md)")
	detSrc := flag.String("detsrc", "internal/detector", "detector package the -detdoc reference must cover")
	var pkgDocs pkgDocList
	flag.Var(&pkgDocs, "pkgdoc", "doc.md:srcdir pair: every exported identifier of srcdir must appear backticked in doc.md (repeatable)")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	fset := token.NewFileSet()
	var violations []violation
	if *cliDoc != "" {
		v, err := checkCLIDoc(*cliDoc, *cmds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	if *detDoc != "" {
		v, err := checkDetectorDoc(*detDoc, *detSrc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	for _, pd := range pkgDocs {
		v, err := checkPackageDoc(pd.doc, pd.src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	for _, root := range roots {
		dirs, err := goDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			v, err := checkDir(fset, dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			violations = append(violations, v...)
		}
	}
	sort.Slice(violations, func(i, j int) bool {
		a, b := violations[i].pos, violations[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, v := range violations {
		fmt.Printf("%s: %s\n", v.pos, v.what)
	}
	if len(violations) > 0 {
		fmt.Printf("doccheck: %d undocumented identifier(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doccheck: all packages and exported identifiers documented")
}

// goDirs lists directories under root containing non-test .go files.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		// testdata trees hold fixtures (instrumentation subjects, golden
		// output), not API surface — the Go toolchain ignores them too.
		if d.IsDir() && d.Name() == "testdata" {
			return fs.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one package directory and reports undocumented
// packages and exported identifiers.
func checkDir(fset *token.FileSet, dir string) ([]violation, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", dir, err)
	}
	var out []violation
	for _, pkg := range pkgs {
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		hasPkgDoc := false
		for _, name := range files {
			if pkg.Files[name].Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, violation{
				pos:  fset.Position(pkg.Files[files[0]].Package),
				what: fmt.Sprintf("package %s has no package doc comment", pkg.Name),
			})
		}
		exportedTypes := exportedTypeNames(pkg)
		for _, name := range files {
			out = append(out, checkFile(fset, pkg.Files[name], exportedTypes)...)
		}
	}
	return out, nil
}

// exportedTypeNames collects the package's exported type names, the
// receivers whose methods must be documented.
func exportedTypeNames(pkg *ast.Package) map[string]bool {
	out := map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if ts.Name.IsExported() {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

func checkFile(fset *token.FileSet, f *ast.File, exportedTypes map[string]bool) []violation {
	var out []violation
	add := func(pos token.Pos, format string, args ...any) {
		out = append(out, violation{pos: fset.Position(pos), what: fmt.Sprintf(format, args...)})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv := receiverTypeName(d.Recv)
				if !exportedTypes[recv] {
					continue
				}
				add(d.Name.Pos(), "exported method %s.%s is undocumented", recv, d.Name.Name)
				continue
			}
			add(d.Name.Pos(), "exported function %s is undocumented", d.Name.Name)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil && ts.Comment == nil {
						add(ts.Name.Pos(), "exported type %s is undocumented", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, name := range vs.Names {
						if name.IsExported() && d.Doc == nil && vs.Doc == nil && vs.Comment == nil {
							add(name.Pos(), "exported %s %s is undocumented", kind, name.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// checkCLIDoc cross-checks the CLI reference against the command
// tree: every command directory needs a "## <name>" section and a
// table row linking to it, every "## <name>" heading must name a
// command that still exists, and every flag a command registers must
// appear backticked in that command's section.
func checkCLIDoc(docPath, cmdRoot string) ([]violation, error) {
	entries, err := os.ReadDir(cmdRoot)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", cmdRoot, err)
	}
	commands := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		// Only directories holding non-test Go files are commands.
		files, err := filepath.Glob(filepath.Join(cmdRoot, e.Name(), "*.go"))
		if err != nil || len(files) == 0 {
			continue
		}
		commands[e.Name()] = true
	}

	data, err := os.ReadFile(docPath)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", docPath, err)
	}
	sections := map[string]*strings.Builder{}
	sectionLine := map[string]int{}
	tableRows := map[string]bool{}
	var current *strings.Builder
	var out []violation
	for i, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "## "); ok {
			name = strings.TrimSpace(name)
			current = &strings.Builder{}
			sections[name] = current
			sectionLine[name] = i + 1
			if !commands[name] {
				out = append(out, violation{
					pos:  token.Position{Filename: docPath, Line: i + 1},
					what: fmt.Sprintf("section %q documents a command missing from %s/", name, cmdRoot),
				})
			}
			continue
		}
		if current != nil {
			current.WriteString(line)
			current.WriteByte('\n')
		}
		// Command-table rows look like "| [name](#name) | ... |".
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "| ["); ok {
			if name, _, ok := strings.Cut(rest, "]"); ok {
				tableRows[name] = true
			}
		}
	}
	names := make([]string, 0, len(commands))
	for name := range commands {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		body, hasSection := sections[name]
		if !hasSection {
			out = append(out, violation{
				pos:  token.Position{Filename: docPath, Line: 1},
				what: fmt.Sprintf("command %s/%s has no \"## %s\" section", cmdRoot, name, name),
			})
		}
		if !tableRows[name] {
			out = append(out, violation{
				pos:  token.Position{Filename: docPath, Line: 1},
				what: fmt.Sprintf("command %s/%s is missing from the command table", cmdRoot, name),
			})
		}
		if !hasSection {
			continue
		}
		flags, err := commandFlags(filepath.Join(cmdRoot, name))
		if err != nil {
			return nil, err
		}
		for _, fl := range flags {
			if !flagDocumented(body.String(), fl) {
				out = append(out, violation{
					pos:  token.Position{Filename: docPath, Line: sectionLine[name]},
					what: fmt.Sprintf("flag -%s of %s/%s is not mentioned (`-%s`) in its section", fl, cmdRoot, name, fl),
				})
			}
		}
	}
	return out, nil
}

// flagRegistrars are the package-level flag constructors whose first
// argument names a command-line flag.
var flagRegistrars = map[string]bool{
	"Bool": true, "Duration": true, "Float64": true,
	"Int": true, "Int64": true, "String": true,
	"Uint": true, "Uint64": true,
}

// commandFlags returns the flag names a command registers: the string
// literals passed to package-level flag.String/Bool/Int/... calls.
// Flags on flag.NewFlagSet subcommand sets are deliberately skipped —
// those are documented per-subcommand, not in the command's flag
// table.
func commandFlags(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", dir, err)
	}
	seen := map[string]bool{}
	var names []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 1 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !flagRegistrars[sel.Sel.Name] {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
					return true
				}
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					name := strings.Trim(lit.Value, `"`)
					if !seen[name] {
						seen[name] = true
						names = append(names, name)
					}
				}
				return true
			})
		}
	}
	sort.Strings(names)
	return names, nil
}

// flagDocumented reports whether the section text mentions the flag
// backticked: a "`-name" occurrence whose next character cannot extend
// the flag name (so documenting -shard does not satisfy -shard-runs).
func flagDocumented(section, name string) bool {
	marker := "`-" + name
	for i := 0; ; {
		j := strings.Index(section[i:], marker)
		if j < 0 {
			return false
		}
		end := i + j + len(marker)
		if end >= len(section) || !isFlagNameChar(section[end]) {
			return true
		}
		i = end
	}
}

// isFlagNameChar reports whether c could continue a flag name.
func isFlagNameChar(c byte) bool {
	return c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// checkDetectorDoc cross-checks the detector design reference against
// the detector package: every registered detector name (the string
// literal in each Register call) and every exported field of the
// Stats struct must appear backticked in the doc, so neither a new
// detector nor a new counter can ship undocumented.
func checkDetectorDoc(docPath, srcDir string) ([]violation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, srcDir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", srcDir, err)
	}
	var wanted []string // identifiers the doc must mention, with their origin
	var origins []string
	addWant := func(name, origin string) {
		wanted = append(wanted, name)
		origins = append(origins, origin)
	}
	for _, pkg := range pkgs {
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, fname := range files {
			ast.Inspect(pkg.Files[fname], func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.CallExpr:
					id, ok := d.Fun.(*ast.Ident)
					if !ok || id.Name != "Register" || len(d.Args) < 1 {
						return true
					}
					if lit, ok := d.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						addWant(strings.Trim(lit.Value, `"`), "registered detector")
					}
				case *ast.TypeSpec:
					if d.Name.Name != "Stats" {
						return true
					}
					st, ok := d.Type.(*ast.StructType)
					if !ok {
						return true
					}
					for _, fld := range st.Fields.List {
						for _, nm := range fld.Names {
							if nm.IsExported() {
								addWant(nm.Name, "exported Stats field")
							}
						}
					}
				}
				return true
			})
		}
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("doccheck: %s: found no registered detectors or Stats fields (wrong -detsrc?)", srcDir)
	}
	data, err := os.ReadFile(docPath)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", docPath, err)
	}
	doc := string(data)
	var out []violation
	for i, name := range wanted {
		if !strings.Contains(doc, "`"+name+"`") {
			out = append(out, violation{
				pos:  token.Position{Filename: docPath, Line: 1},
				what: fmt.Sprintf("%s %q from %s is not mentioned (backticked) in the detector reference", origins[i], name, srcDir),
			})
		}
	}
	return out, nil
}

// pkgDoc is one -pkgdoc pairing of a reference doc and the package
// directory it must cover.
type pkgDoc struct {
	doc string
	src string
}

// pkgDocList collects repeated -pkgdoc flags.
type pkgDocList []pkgDoc

// String renders the list for flag's usage output.
func (l *pkgDocList) String() string {
	parts := make([]string, len(*l))
	for i, pd := range *l {
		parts[i] = pd.doc + ":" + pd.src
	}
	return strings.Join(parts, ",")
}

// Set parses one doc.md:srcdir pair.
func (l *pkgDocList) Set(v string) error {
	doc, src, ok := strings.Cut(v, ":")
	if !ok || doc == "" || src == "" {
		return fmt.Errorf("-pkgdoc %q: want doc.md:srcdir", v)
	}
	*l = append(*l, pkgDoc{doc: doc, src: src})
	return nil
}

// checkPackageDoc cross-checks a package reference doc against the
// package: every exported top-level identifier (function, type,
// const, var — methods follow their receiver type and are skipped)
// must appear backticked in the doc, so a new export cannot ship
// without the reference catching up.
func checkPackageDoc(docPath, srcDir string) ([]violation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, srcDir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", srcDir, err)
	}
	var wanted []string
	seen := map[string]bool{}
	addWant := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			wanted = append(wanted, name)
		}
	}
	for _, pkg := range pkgs {
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, fname := range files {
			for _, decl := range pkg.Files[fname].Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.IsExported() {
						addWant(d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								addWant(s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, nm := range s.Names {
								if nm.IsExported() {
									addWant(nm.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("doccheck: %s: found no exported identifiers (wrong -pkgdoc source?)", srcDir)
	}
	data, err := os.ReadFile(docPath)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", docPath, err)
	}
	doc := string(data)
	var out []violation
	sort.Strings(wanted)
	for _, name := range wanted {
		if !strings.Contains(doc, "`"+name+"`") && !strings.Contains(doc, "`"+name+"(") && !strings.Contains(doc, "."+name+"`") {
			out = append(out, violation{
				pos:  token.Position{Filename: docPath, Line: 1},
				what: fmt.Sprintf("exported identifier %q of %s is not mentioned (backticked) in the package reference", name, srcDir),
			})
		}
	}
	return out, nil
}

func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
